package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"syscall"
	"testing"
	"time"

	"press/server"
	"press/trace"
)

func loadgenTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.Synthesize(trace.Spec{
		Name: "lg", NumFiles: 12, AvgFileKB: 4,
		NumRequests: 300, AvgReqKB: 3, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunAgainstRealCluster(t *testing.T) {
	tr := loadgenTrace(t)
	cl, err := server.Start(server.Config{
		Nodes: 2, Trace: tr, Transport: server.TransportVIA,
		CacheBytes: 1 << 20, DiskDelay: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	targets := make([]string, 2)
	for i, a := range cl.Addrs() {
		targets[i] = "http://" + a
	}
	sizes := map[string]int64{}
	for _, f := range tr.Files {
		sizes[f.Name] = f.Size
	}
	res, err := Run(context.Background(), Config{
		Targets:     targets,
		Trace:       tr,
		Concurrency: 4,
		Requests:    200,
		Seed:        3,
		Verify: func(name string, body []byte) error {
			want := server.SynthesizeContent(name, sizes[name])
			if !bytes.Equal(body, want) {
				return fmt.Errorf("content mismatch for %s", name)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 200 {
		t.Errorf("requests = %d", res.Requests)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	if res.Throughput <= 0 || res.LatencyMean <= 0 {
		t.Errorf("throughput %v latency %v", res.Throughput, res.LatencyMean)
	}
	if res.LatencyMax < res.LatencyMean {
		t.Errorf("latency max %v below mean %v", res.LatencyMax, res.LatencyMean)
	}
}

// TestAvailabilityKillNodeMidRun crashes one node of a VIA cluster
// while a load run is in flight. The cluster's failover machinery keeps
// it available: the run completes, the overwhelming majority of
// requests succeed, and whatever failed is accounted to an error class.
func TestAvailabilityKillNodeMidRun(t *testing.T) {
	tr, err := trace.Synthesize(trace.Spec{
		Name: "avail", NumFiles: 16, AvgFileKB: 4,
		NumRequests: 1200, AvgReqKB: 3, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	const nodes = 4
	const victim = 2
	cl, err := server.Start(server.Config{
		Nodes: nodes, Trace: tr, Transport: server.TransportVIA,
		CacheBytes: 1 << 20, DiskDelay: 50 * time.Microsecond,
		Health: server.HealthConfig{
			HeartbeatInterval: 100 * time.Millisecond,
			SuspectAfter:      300 * time.Millisecond,
			DeadAfter:         600 * time.Millisecond,
			FailoverTimeout:   1500 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	targets := make([]string, nodes)
	for i, a := range cl.Addrs() {
		targets[i] = "http://" + a
	}
	resCh := make(chan *Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := Run(context.Background(), Config{
			Targets:     targets,
			Trace:       tr,
			Concurrency: 4,
			Seed:        9,
			Timeout:     10 * time.Second,
		})
		resCh <- res
		errCh <- err
	}()

	time.Sleep(150 * time.Millisecond) // run against a healthy cluster first
	if err := cl.CrashNode(victim); err != nil {
		t.Fatal(err)
	}

	res := <-resCh
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if res.Requests != int64(len(tr.Requests)) {
		t.Errorf("run stopped early: %d of %d requests", res.Requests, len(tr.Requests))
	}
	if classes := res.ErrTimeout + res.ErrRefused + res.ErrShed + res.ErrServer + res.ErrOther; classes != res.Errors {
		t.Errorf("error classes sum to %d, total errors %d", classes, res.Errors)
	}
	// Availability: a single crashed node must not take down the run.
	// The crash legitimately fails its in-flight requests, nothing more.
	if res.Errors > res.Requests/5 {
		t.Errorf("%d of %d requests failed; cluster did not stay available", res.Errors, res.Requests)
	}
	// The cluster is still serving after the run, on every live node.
	for i := 0; i < nodes; i++ {
		if i == victim {
			continue
		}
		if _, err := server.Fetch(cl.URL(i), tr.Files[0].Name); err != nil {
			t.Errorf("fetch via node %d after crash: %v", i, err)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err    error
		status int
		want   errClass
	}{
		{nil, 200, classOther},
		{context.DeadlineExceeded, 0, classTimeout},
		{fmt.Errorf("wrap: %w", syscall.ECONNREFUSED), 0, classRefused},
		{fmt.Errorf("wrap: %w", syscall.ECONNRESET), 0, classRefused},
		{fmt.Errorf("loadgen: GET x: 500 Internal Server Error"), 500, classServer},
		{fmt.Errorf("loadgen: GET x: 503 Service Unavailable"), 503, classShed},
		{fmt.Errorf("content mismatch"), 200, classOther},
		{fmt.Errorf("some transport error"), 0, classOther},
	}
	for i, c := range cases {
		if got := classify(c.err, c.status); got != c.want {
			t.Errorf("case %d: classify(%v, %d) = %v, want %v", i, c.err, c.status, got, c.want)
		}
	}
}

// TestOpenLoopPoisson drives a small cluster in open-loop mode and
// checks the arrival process delivered roughly Rate * Duration
// requests, independent of service time, with quantiles populated.
func TestOpenLoopPoisson(t *testing.T) {
	tr := loadgenTrace(t)
	cl, err := server.Start(server.Config{
		Nodes: 2, Trace: tr, Transport: server.TransportVIA,
		CacheBytes: 1 << 20, DiskDelay: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	targets := make([]string, 2)
	for i, a := range cl.Addrs() {
		targets[i] = "http://" + a
	}
	const rate = 400.0
	duration := 1500 * time.Millisecond
	res, err := Run(context.Background(), Config{
		Targets:  targets,
		Trace:    tr,
		Rate:     rate,
		Duration: duration,
		Seed:     41,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A Poisson process with lambda = rate*duration = 600 has stddev
	// ~24.5; a 5-sigma band is [477, 723]. Far looser than the bound a
	// closed-loop generator would show if service time gated arrivals.
	want := rate * duration.Seconds()
	if float64(res.Requests) < want*0.8 || float64(res.Requests) > want*1.2 {
		t.Errorf("open loop issued %d requests, want ~%.0f", res.Requests, want)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d (timeout %d refused %d shed %d server %d other %d)",
			res.Errors, res.ErrTimeout, res.ErrRefused, res.ErrShed, res.ErrServer, res.ErrOther)
	}
	if res.LatencyP50 <= 0 || res.LatencyP99 < res.LatencyP50 {
		t.Errorf("quantiles p50=%v p99=%v", res.LatencyP50, res.LatencyP99)
	}
	// Seeded arrivals are reproducible: same seed, same request count.
	res2, err := Run(context.Background(), Config{
		Targets: targets, Trace: tr, Rate: rate, Duration: duration, Seed: 41,
		Requests: 100, // cap to keep the rerun quick
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Requests != 100 {
		t.Errorf("request cap in open loop: got %d, want 100", res2.Requests)
	}
}

// TestOpenLoopShedClass points the open-loop generator at an
// overload-controlled single node whose accept queue is tiny; the 503s
// it sheds must land in ErrShed, not ErrServer.
func TestOpenLoopShedClass(t *testing.T) {
	tr := loadgenTrace(t)
	cl, err := server.Start(server.Config{
		Nodes: 1, Trace: tr, Transport: server.TransportVIA,
		CacheBytes: 1 << 20, DiskDelay: 2 * time.Millisecond,
		Overload: server.OverloadConfig{
			Enabled:     true,
			AcceptQueue: 1,
			DiskQueue:   1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := Run(context.Background(), Config{
		Targets:  []string{"http://" + cl.Addrs()[0]},
		Trace:    tr,
		Rate:     2000, // far past what a 2ms-disk single node can serve
		Duration: 500 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrShed == 0 {
		t.Errorf("no sheds recorded under 2000 req/s against a 1-deep accept queue (errors: timeout %d refused %d shed %d server %d other %d)",
			res.ErrTimeout, res.ErrRefused, res.ErrShed, res.ErrServer, res.ErrOther)
	}
	if res.ErrServer != 0 {
		t.Errorf("%d sheds misclassified as server errors", res.ErrServer)
	}
	if sum := res.ErrTimeout + res.ErrRefused + res.ErrShed + res.ErrServer + res.ErrOther; sum != res.Errors {
		t.Errorf("error classes sum to %d, total errors %d", sum, res.Errors)
	}
}

func TestRunValidation(t *testing.T) {
	tr := loadgenTrace(t)
	if _, err := Run(context.Background(), Config{Trace: tr}); err == nil {
		t.Error("no targets accepted")
	}
	if _, err := Run(context.Background(), Config{Targets: []string{"http://x"}}); err == nil {
		t.Error("no trace accepted")
	}
}

func TestRunContextCancel(t *testing.T) {
	tr := loadgenTrace(t)
	// Point at a black-hole target; cancellation must end the run.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err := Run(ctx, Config{
			Targets:     []string{"http://127.0.0.1:1"}, // refused
			Trace:       tr,
			Concurrency: 2,
			Requests:    50,
			Timeout:     100 * time.Millisecond,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if res.Errors == 0 {
			t.Error("expected connection errors")
		}
		if res.ErrRefused == 0 {
			t.Error("refused connections not classified")
		}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop on cancellation")
	}
}
