module press

go 1.22
