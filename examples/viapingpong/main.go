// Viapingpong uses the software VIA library directly: two NICs on one
// fabric, a connected VI pair, send/receive ping-pong, and remote
// memory writes discovered by polling — the microbenchmarks of
// Section 3.2, run against the software implementation.
package main

import (
	"fmt"
	"log"
	"time"

	"press/via"
)

func main() {
	log.SetFlags(0)

	fabric := via.NewFabric()
	defer fabric.Close()
	alice, err := fabric.CreateNIC("alice")
	if err != nil {
		log.Fatal(err)
	}
	bob, err := fabric.CreateNIC("bob")
	if err != nil {
		log.Fatal(err)
	}

	// Connection setup: the only part where the "OS" is involved.
	ln, err := bob.Listen("pingpong")
	if err != nil {
		log.Fatal(err)
	}
	bobVI, err := bob.CreateVI(via.ReliableDelivery, 64)
	if err != nil {
		log.Fatal(err)
	}
	accepted := make(chan error, 1)
	go func() {
		_, err := ln.Accept(bobVI)
		accepted <- err
	}()
	aliceVI, err := alice.CreateVI(via.ReliableDelivery, 64)
	if err != nil {
		log.Fatal(err)
	}
	if err := aliceVI.Connect("bob", "pingpong"); err != nil {
		log.Fatal(err)
	}
	if err := <-accepted; err != nil {
		log.Fatal(err)
	}
	fmt.Println("VI pair connected (reliable delivery)")

	// Ping-pong with 4-byte messages, as in the paper's latency test.
	const rounds = 2000
	aliceBuf, _ := alice.RegisterMemory(make([]byte, 64))
	bobBuf, _ := bob.RegisterMemory(make([]byte, 64))

	start := time.Now()
	for i := 0; i < rounds; i++ {
		rd := via.MustDescriptor(via.Segment{Region: bobBuf, Offset: 0, Len: 4})
		if err := bobVI.PostRecv(rd); err != nil {
			log.Fatal(err)
		}
		sd := via.MustDescriptor(via.Segment{Region: aliceBuf, Offset: 0, Len: 4})
		if err := aliceVI.PostSend(sd); err != nil {
			log.Fatal(err)
		}
		if _, err := bobVI.RecvWait(time.Second); err != nil {
			log.Fatal(err)
		}
		// And back.
		rd2 := via.MustDescriptor(via.Segment{Region: aliceBuf, Offset: 8, Len: 4})
		if err := aliceVI.PostRecv(rd2); err != nil {
			log.Fatal(err)
		}
		sd2 := via.MustDescriptor(via.Segment{Region: bobBuf, Offset: 8, Len: 4})
		if err := bobVI.PostSend(sd2); err != nil {
			log.Fatal(err)
		}
		if _, err := aliceVI.RecvWait(time.Second); err != nil {
			log.Fatal(err)
		}
	}
	rtt := time.Since(start) / rounds
	fmt.Printf("4-byte ping-pong: %v round trip (%v one way) over %d rounds\n", rtt, rtt/2, rounds)

	// Bandwidth with 32-KByte messages, as in the paper's bandwidth test.
	const big = 32 * 1024
	const xfers = 500
	sendBuf, _ := alice.RegisterMemory(make([]byte, big))
	recvBuf, _ := bob.RegisterMemory(make([]byte, big))
	start = time.Now()
	for i := 0; i < xfers; i++ {
		rd := via.MustDescriptor(via.Segment{Region: recvBuf, Offset: 0, Len: big})
		if err := bobVI.PostRecv(rd); err != nil {
			log.Fatal(err)
		}
		sd := via.MustDescriptor(via.Segment{Region: sendBuf, Offset: 0, Len: big})
		if err := aliceVI.PostSend(sd); err != nil {
			log.Fatal(err)
		}
		if err := sd.Wait(time.Second); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	mbps := float64(big) * xfers / elapsed.Seconds() / 1e6
	fmt.Printf("32-KByte transfers: %.0f MB/s over %d transfers\n", mbps, xfers)

	// Remote memory write: alice writes into bob's registered region;
	// bob discovers it by polling a sequence number — no interrupt, no
	// receive descriptor, no receive thread.
	recvsBefore := bob.Stats().RecvsComplete
	ring, _ := bob.RegisterMemory(make([]byte, 128))
	ring.EnableRemoteWrite()
	payload := []byte("written remotely")
	msg := make([]byte, len(payload)+4)
	copy(msg, payload)
	msg[len(payload)] = 1 // sequence number
	src, _ := alice.RegisterMemory(msg)
	d := via.MustDescriptor(via.Segment{Region: src, Offset: 0, Len: len(msg)})
	if err := aliceVI.PostRDMAWrite(d, ring.Handle(), 0); err != nil {
		log.Fatal(err)
	}
	for {
		seq, err := ring.Load32(len(payload))
		if err != nil {
			log.Fatal(err)
		}
		if seq == 1 {
			break
		}
	}
	got := make([]byte, len(payload))
	if err := ring.Read(got, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote memory write polled by sequence number: %q\n", got)
	fmt.Printf("receive completions consumed by the remote write: %d (RMW bypasses the receive path)\n",
		bob.Stats().RecvsComplete-recvsBefore)
	fmt.Printf("remote writes performed by alice's NIC: %d\n", alice.Stats().RDMAWrites)
}
