// Dissemination reproduces the Figure 4 experiment on the simulator at
// reduced scale: the five load-information dissemination strategies on
// one trace, showing why PRESS piggy-backs load instead of broadcasting
// it.
package main

import (
	"fmt"
	"log"

	"press/cluster"
	"press/core"
	"press/netmodel"
	"press/stats"
	"press/trace"
)

func main() {
	log.SetFlags(0)

	spec, err := trace.SpecByName("clarknet")
	if err != nil {
		log.Fatal(err)
	}
	spec.NumRequests = 60000
	tr, err := trace.Synthesize(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("PRESS on 8 simulated nodes, VIA/cLAN, clarknet trace")
	fmt.Println()
	t := stats.NewTable("Strategy", "Throughput (req/s)", "Load msgs", "Total msgs")
	for _, st := range core.Strategies() {
		r, err := cluster.Run(cluster.Config{
			Nodes:         8,
			Trace:         tr,
			Combo:         netmodel.VIAOverCLAN(),
			Dissemination: st,
			Seed:          1,
		})
		if err != nil {
			log.Fatal(err)
		}
		count, _ := r.Msgs.Total()
		t.AddRowf(st.String(), r.Throughput, int(r.Msgs.Count[core.MsgLoad]), int(count))
	}
	fmt.Print(t)
	fmt.Println("\nPiggy-backing combines the minimum number of messages with good")
	fmt.Println("enough load balancing; broadcasting on every change (L1) costs so")
	fmt.Println("much CPU that it can lose to no load balancing at all (Section 3.3).")
}
