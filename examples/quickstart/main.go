// Quickstart: bring up a 4-node PRESS cluster over software VIA, fetch
// files through different nodes over real HTTP, and watch the
// locality-conscious distribution at work.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"press/core"
	"press/netmodel"
	"press/server"
	"press/trace"
)

func main() {
	log.SetFlags(0)

	// A small synthetic site: 200 files, Zipf-like popularity.
	tr, err := trace.Synthesize(trace.Spec{
		Name: "quickstart", NumFiles: 200, AvgFileKB: 12,
		NumRequests: 1000, AvgReqKB: 9, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Version 5: remote memory writes plus zero-copy file transfers.
	v5, err := netmodel.VersionByName("V5")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := server.Start(server.Config{
		Nodes:         4,
		Trace:         tr,
		Transport:     server.TransportVIA,
		Version:       v5,
		Dissemination: core.PB(),
		CacheBytes:    2 << 20,
		DiskDelay:     time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	fmt.Println("cluster up:")
	for i, a := range cl.Addrs() {
		fmt.Printf("  node %d -> http://%s\n", i, a)
	}

	// Fetch each of the five most popular files through every node. The
	// first access loads it from one node's disk; afterwards requests
	// arriving anywhere are forwarded to the caching node over VIA.
	for _, f := range tr.Files[:5] {
		want := server.SynthesizeContent(f.Name, f.Size)
		for node := range cl.Addrs() {
			got, err := server.Fetch(cl.URL(node), f.Name)
			if err != nil {
				log.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				log.Fatalf("content mismatch for %s via node %d", f.Name, node)
			}
		}
		fmt.Printf("fetched %-28s (%5d bytes) via all 4 nodes: content OK\n", f.Name, f.Size)
	}

	s := cl.Stats()
	fmt.Printf("\nrequests=%d localHits=%d remoteHits=%d forwarded=%d diskReads=%d\n",
		s.Nodes.Requests, s.Nodes.LocalHits, s.Nodes.RemoteHits, s.Nodes.Forwarded, s.Nodes.DiskReads)
	fmt.Println("\nintra-cluster messages:")
	for mt := core.MsgType(0); mt < core.NumMsgTypes; mt++ {
		fmt.Printf("  %-8s %5d msgs %8d bytes\n", mt, s.Msgs.Count[mt], s.Msgs.Bytes[mt])
	}
}
