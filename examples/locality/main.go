// Locality demonstrates why locality-conscious servers exist (the
// paper's motivating observation): serving a request from any memory
// cache, even a remote one, beats serving it from disk. It runs the
// same workload through a content-oblivious cluster and through PRESS,
// at several cache sizes, on the simulator.
package main

import (
	"fmt"
	"log"

	"press/experiments"
	"press/stats"
)

func main() {
	log.SetFlags(0)

	o := experiments.Options{Requests: 60000, Trace: "clarknet"}
	sizes := []int64{16 << 20, 32 << 20, 64 << 20, 128 << 20, 512 << 20}
	pts, err := experiments.LocalityBenefit(o, sizes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Content-oblivious vs locality-conscious (PRESS), 8 nodes, clarknet")
	fmt.Println()
	t := stats.NewTable("Cache/node", "Oblivious req/s", "PRESS req/s", "PRESS advantage",
		"Oblivious hit", "PRESS hit")
	for _, p := range pts {
		t.AddRowf(stats.FormatBytes(p.CacheBytes),
			p.Oblivious, p.PRESS,
			fmt.Sprintf("%+.1f%%", (p.PRESS/p.Oblivious-1)*100),
			fmt.Sprintf("%.3f", p.ObliviousHit),
			fmt.Sprintf("%.3f", p.PRESSHit))
	}
	fmt.Print(t)
	fmt.Println("\nWith caches small relative to the working set, aggregating the")
	fmt.Println("cluster's memories into one large cache wins despite the")
	fmt.Println("intra-cluster transfers it requires; once a single node's cache")
	fmt.Println("holds the working set, the two designs converge.")
}
