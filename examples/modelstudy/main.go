// Modelstudy explores the analytical model of Section 4: how much
// user-level communication is worth as clusters grow and working sets
// change, on current and next-generation operating systems.
package main

import (
	"fmt"
	"log"

	"press/model"
	"press/stats"
)

func main() {
	log.SetFlags(0)

	fmt.Println("User-level communication gains predicted by the queueing model")
	fmt.Println("(VIA with RMW + zero-copy vs TCP; 16-KByte average files)")
	fmt.Println()

	hitRates := []float64{0.3, 0.5, 0.7, 0.9}
	nodes := []int{2, 8, 32, 128}

	for _, future := range []bool{false, true} {
		label := "current operating systems"
		if future {
			label = "next-generation operating systems (zero-copy TCP, IO-Lite style)"
		}
		fmt.Printf("--- %s ---\n\n", label)
		headers := []string{"hit rate"}
		for _, n := range nodes {
			headers = append(headers, fmt.Sprintf("N=%d", n))
		}
		t := stats.NewTable(headers...)
		for _, hit := range hitRates {
			cells := []interface{}{fmt.Sprintf("%.0f%%", hit*100)}
			for _, n := range nodes {
				p := model.DefaultParams(n, hit, 16)
				p.Future = future
				g, err := p.Gain(model.SysVIARMWZeroCopy, model.SysTCP)
				if err != nil {
					log.Fatal(err)
				}
				cells = append(cells, fmt.Sprintf("%+.1f%%", g*100))
			}
			t.AddRowf(cells...)
		}
		fmt.Print(t)
		fmt.Println()
	}

	// Where does the bottleneck sit? Show the crossover from disk to CPU.
	fmt.Println("--- bottleneck by single-node hit rate (N=8, TCP) ---")
	fmt.Println()
	t := stats.NewTable("hit rate", "Throughput", "Bottleneck", "Cluster hit rate", "Forwarded Q")
	for _, hit := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
		p := model.DefaultParams(8, hit, 16)
		sol, err := p.Solve(model.SysTCP)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRowf(fmt.Sprintf("%.0f%%", hit*100), sol.Throughput,
			sol.Bottleneck.String(),
			fmt.Sprintf("%.3f", sol.Workload.HitRate),
			fmt.Sprintf("%.3f", sol.Workload.Forwarded))
	}
	fmt.Print(t)
}
