package trace

import (
	"math"
	"testing"
	"testing/quick"
)

// Scaled-down specs keep calibration tests fast while exercising the same
// code paths as the full Table 1 traces.
func smallSpec() Spec {
	return Spec{Name: "small", NumFiles: 2000, AvgFileKB: 14.2, NumRequests: 50000, AvgReqKB: 9.7, Seed: 11}
}

func TestSynthesizeMatchesSpecMeans(t *testing.T) {
	tr := MustSynthesize(smallSpec())
	st := tr.Stats()
	if st.NumFiles != 2000 || st.NumRequests != 50000 {
		t.Fatalf("counts: %+v", st)
	}
	if rel := math.Abs(st.AvgFileKB-14.2) / 14.2; rel > 0.02 {
		t.Errorf("avg file size %v KB, want 14.2 (rel err %v)", st.AvgFileKB, rel)
	}
	// The request stream is a finite sample; allow 6% tolerance.
	if rel := math.Abs(st.AvgReqKB-9.7) / 9.7; rel > 0.06 {
		t.Errorf("avg req size %v KB, want 9.7 (rel err %v)", st.AvgReqKB, rel)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := MustSynthesize(smallSpec())
	b := MustSynthesize(smallSpec())
	if len(a.Files) != len(b.Files) || len(a.Requests) != len(b.Requests) {
		t.Fatal("lengths differ between identical specs")
	}
	for i := range a.Files {
		if a.Files[i] != b.Files[i] {
			t.Fatalf("file %d differs: %+v vs %+v", i, a.Files[i], b.Files[i])
		}
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestSynthesizeSeedChangesStream(t *testing.T) {
	s := smallSpec()
	a := MustSynthesize(s)
	s.Seed = 99
	b := MustSynthesize(s)
	same := true
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical request streams")
	}
}

func TestSynthesizeValidates(t *testing.T) {
	tr := MustSynthesize(smallSpec())
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizePopularFilesAreSmaller(t *testing.T) {
	// All four paper traces have avg req size < avg file size, so the
	// most popular files must be smaller than average on synthesis.
	tr := MustSynthesize(smallSpec())
	var top, all float64
	n := 100
	for i, f := range tr.Files {
		all += float64(f.Size)
		if i < n {
			top += float64(f.Size)
		}
	}
	topMean := top / float64(n)
	allMean := all / float64(len(tr.Files))
	if topMean >= allMean {
		t.Errorf("top-%d mean %v >= population mean %v", n, topMean, allMean)
	}
}

func TestSynthesizeRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "x", NumFiles: 0, AvgFileKB: 1, NumRequests: 1, AvgReqKB: 1},
		{Name: "x", NumFiles: 10, AvgFileKB: 0, NumRequests: 1, AvgReqKB: 1},
		{Name: "x", NumFiles: 10, AvgFileKB: 1, NumRequests: -1, AvgReqKB: 1},
		{Name: "x", NumFiles: 10, AvgFileKB: 1, NumRequests: 1, AvgReqKB: 0},
	}
	for i, s := range bad {
		if _, err := Synthesize(s); err == nil {
			t.Errorf("spec %d: expected error", i)
		}
	}
}

func TestTable1SpecsComplete(t *testing.T) {
	specs := Table1Specs()
	if len(specs) != 4 {
		t.Fatalf("want 4 traces, got %d", len(specs))
	}
	want := map[string]struct {
		files, reqs int
	}{
		"clarknet": {28864, 2978121},
		"forth":    {11931, 400335},
		"nasa":     {9129, 3147684},
		"rutgers":  {18370, 498646},
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected trace %q", s.Name)
			continue
		}
		if s.NumFiles != w.files || s.NumRequests != w.reqs {
			t.Errorf("%s: files=%d reqs=%d, want %d/%d", s.Name, s.NumFiles, s.NumRequests, w.files, w.reqs)
		}
	}
}

// TestTable1Calibration generates each paper trace at reduced request
// volume and checks the size statistics against Table 1.
func TestTable1Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test generates full file populations")
	}
	for _, spec := range Table1Specs() {
		spec := spec
		spec.NumRequests = 200000 // sample is enough to estimate the mean
		t.Run(spec.Name, func(t *testing.T) {
			tr := MustSynthesize(spec)
			st := tr.Stats()
			if rel := math.Abs(st.AvgFileKB-spec.AvgFileKB) / spec.AvgFileKB; rel > 0.02 {
				t.Errorf("avg file %v KB, want %v", st.AvgFileKB, spec.AvgFileKB)
			}
			if rel := math.Abs(st.AvgReqKB-spec.AvgReqKB) / spec.AvgReqKB; rel > 0.08 {
				t.Errorf("avg req %v KB, want %v", st.AvgReqKB, spec.AvgReqKB)
			}
		})
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("nasa")
	if err != nil || s.NumFiles != 9129 {
		t.Fatalf("SpecByName(nasa) = %+v, %v", s, err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("expected error for unknown trace")
	}
}

func TestTruncate(t *testing.T) {
	tr := MustSynthesize(smallSpec())
	tt := tr.Truncate(10)
	if len(tt.Requests) != 10 {
		t.Fatalf("truncate: %d requests", len(tt.Requests))
	}
	if len(tt.Files) != len(tr.Files) {
		t.Fatal("truncate must keep the file population")
	}
	if tr.Truncate(1<<30) != tr {
		t.Fatal("truncate beyond length must return the receiver")
	}
}

func TestPopularityOrderDescending(t *testing.T) {
	tr := MustSynthesize(smallSpec())
	order := tr.PopularityOrder()
	counts := make([]int, len(tr.Files))
	for _, ri := range tr.Requests {
		counts[ri]++
	}
	for i := 1; i < len(order); i++ {
		if counts[order[i]] > counts[order[i-1]] {
			t.Fatalf("order not descending at %d", i)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := MustSynthesize(Spec{Name: "v", NumFiles: 5, AvgFileKB: 10, NumRequests: 20, AvgReqKB: 8, Seed: 3})
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := *good
	bad.Requests = append([]int32{}, good.Requests...)
	bad.Requests[0] = 99
	if bad.Validate() == nil {
		t.Error("out-of-range request not caught")
	}

	bad2 := *good
	bad2.Files = append([]File{}, good.Files...)
	bad2.Files[1].Name = bad2.Files[0].Name
	if bad2.Validate() == nil {
		t.Error("duplicate name not caught")
	}

	bad3 := *good
	bad3.Files = append([]File{}, good.Files...)
	bad3.Files[2].Size = 0
	if bad3.Validate() == nil {
		t.Error("zero size not caught")
	}

	bad4 := *good
	bad4.Files = append([]File{}, good.Files...)
	bad4.Files[3].Name = ""
	if bad4.Validate() == nil {
		t.Error("empty name not caught")
	}
}

func TestStatsEmptyTrace(t *testing.T) {
	var tr Trace
	st := tr.Stats()
	if st.NumFiles != 0 || st.NumRequests != 0 || st.AvgFileKB != 0 || st.AvgReqKB != 0 {
		t.Errorf("empty trace stats = %+v", st)
	}
}

func TestSynthesizeSizeFloorProperty(t *testing.T) {
	// Property: every synthesized file size is at least the floor, for
	// arbitrary seeds.
	check := func(seed int64) bool {
		tr := MustSynthesize(Spec{Name: "p", NumFiles: 200, AvgFileKB: 5,
			NumRequests: 100, AvgReqKB: 4, Seed: seed})
		for _, f := range tr.Files {
			if f.Size < minFileBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzePopularityRecoversAlpha(t *testing.T) {
	// Synthesize with a known exponent; the fit should land near it.
	for _, alpha := range []float64{0.6, 0.8, 1.0} {
		tr := MustSynthesize(Spec{Name: "fit", NumFiles: 3000, AvgFileKB: 10,
			NumRequests: 400000, AvgReqKB: 8, Alpha: alpha, Seed: 9})
		p, err := tr.AnalyzePopularity()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Alpha-alpha) > 0.12 {
			t.Errorf("alpha %v: fitted %v (R2 %.3f)", alpha, p.Alpha, p.R2)
		}
		if p.R2 < 0.9 {
			t.Errorf("alpha %v: poor fit R2 %.3f", alpha, p.R2)
		}
		if p.Top10Share <= 0.1 || p.Top10Share > 1 {
			t.Errorf("alpha %v: top-10%% share %v", alpha, p.Top10Share)
		}
	}
}

func TestAnalyzePopularityMoreSkewMoreShare(t *testing.T) {
	low := MustSynthesize(Spec{Name: "lo", NumFiles: 2000, AvgFileKB: 10,
		NumRequests: 100000, AvgReqKB: 8, Alpha: 0.5, Seed: 4})
	high := MustSynthesize(Spec{Name: "hi", NumFiles: 2000, AvgFileKB: 10,
		NumRequests: 100000, AvgReqKB: 8, Alpha: 1.1, Seed: 4})
	pl, err := low.AnalyzePopularity()
	if err != nil {
		t.Fatal(err)
	}
	ph, err := high.AnalyzePopularity()
	if err != nil {
		t.Fatal(err)
	}
	if ph.Top10Share <= pl.Top10Share {
		t.Errorf("top-10%% share: alpha 1.1 %.3f not above alpha 0.5 %.3f",
			ph.Top10Share, pl.Top10Share)
	}
}

func TestAnalyzePopularityErrors(t *testing.T) {
	var empty Trace
	if _, err := empty.AnalyzePopularity(); err == nil {
		t.Error("empty trace analyzed")
	}
	// All singletons: nothing to fit.
	singles := &Trace{Name: "s",
		Files:    []File{{Name: "/a", Size: 1000}, {Name: "/b", Size: 1000}, {Name: "/c", Size: 1000}},
		Requests: []int32{0, 1, 2}}
	if _, err := singles.AnalyzePopularity(); err == nil {
		t.Error("singleton trace fitted")
	}
}
