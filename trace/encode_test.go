package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestEncodeRoundTrip(t *testing.T) {
	orig := MustSynthesize(Spec{Name: "rt", NumFiles: 300, AvgFileKB: 12,
		NumRequests: 5000, AvgReqKB: 9, Seed: 21})
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}

	var got Trace
	rn, err := got.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rn != n {
		t.Errorf("ReadFrom consumed %d bytes, wrote %d", rn, n)
	}
	if got.Name != orig.Name {
		t.Errorf("name %q != %q", got.Name, orig.Name)
	}
	if len(got.Files) != len(orig.Files) || len(got.Requests) != len(orig.Requests) {
		t.Fatal("lengths differ after round trip")
	}
	for i := range orig.Files {
		if got.Files[i] != orig.Files[i] {
			t.Fatalf("file %d differs", i)
		}
	}
	for i := range orig.Requests {
		if got.Requests[i] != orig.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestReadFromRejectsBadMagic(t *testing.T) {
	var tr Trace
	if _, err := tr.ReadFrom(strings.NewReader("NOTATRACE-really")); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestReadFromRejectsTruncated(t *testing.T) {
	orig := MustSynthesize(Spec{Name: "tr", NumFiles: 10, AvgFileKB: 2,
		NumRequests: 50, AvgReqKB: 2, Seed: 5})
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{1, len(traceMagic), len(data) / 2, len(data) - 1} {
		var tr Trace
		if _, err := tr.ReadFrom(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestReadFromRejectsBadRequestIndex(t *testing.T) {
	// Handcraft a trace whose request index is out of range, then ensure
	// the decoder rejects it rather than producing a corrupt trace.
	orig := &Trace{Name: "x", Files: []File{{Name: "/a", Size: 10}},
		Requests: []int32{0}}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The final varint is the request index 0; bump it to 7.
	data[len(data)-1] = 7
	var tr Trace
	if _, err := tr.ReadFrom(bytes.NewReader(data)); err == nil {
		t.Fatal("out-of-range request index not rejected")
	}
}

func BenchmarkEncode(b *testing.B) {
	tr := MustSynthesize(Spec{Name: "bench", NumFiles: 1000, AvgFileKB: 14,
		NumRequests: 100000, AvgReqKB: 10, Seed: 8})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
