package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"press/zipfdist"
)

// Spec describes a synthetic trace to generate. The four paper traces
// are available as Table1Specs.
type Spec struct {
	Name        string
	NumFiles    int
	AvgFileKB   float64 // target average file size, KBytes
	NumRequests int
	AvgReqKB    float64 // target average requested-file size, KBytes
	Alpha       float64 // Zipf-like exponent; 0.8 if zero
	Seed        int64   // deterministic generation seed
	// SigmaLog is the log-normal shape parameter for file sizes;
	// 1.1 if zero (heavy-tailed, typical of WWW file populations).
	SigmaLog float64
}

// Table1Specs returns specs for the four traces of the paper's Table 1:
//
//	Logs      Num files  Avg file size  Num requests  Avg req size
//	Clarknet  28864      14.2 KB        2978121       9.7 KB
//	Forth     11931      19.3 KB        400335        8.8 KB
//	Nasa      9129       27.6 KB        3147684       21.8 KB
//	Rutgers   18370      27.3 KB        498646        19.0 KB
func Table1Specs() []Spec {
	return []Spec{
		{Name: "clarknet", NumFiles: 28864, AvgFileKB: 14.2, NumRequests: 2978121, AvgReqKB: 9.7, Seed: 1},
		{Name: "forth", NumFiles: 11931, AvgFileKB: 19.3, NumRequests: 400335, AvgReqKB: 8.8, Seed: 2},
		{Name: "nasa", NumFiles: 9129, AvgFileKB: 27.6, NumRequests: 3147684, AvgReqKB: 21.8, Seed: 3},
		{Name: "rutgers", NumFiles: 18370, AvgFileKB: 27.3, NumRequests: 498646, AvgReqKB: 19.0, Seed: 4},
	}
}

// SpecByName returns the Table 1 spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Table1Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("trace: unknown trace %q (want clarknet, forth, nasa, or rutgers)", name)
}

const minFileBytes = 128

// Synthesize generates a deterministic trace matching the spec:
//
//   - file sizes are drawn from a log-normal distribution and scaled so
//     the population mean matches AvgFileKB exactly;
//   - popularity follows a Zipf-like distribution with exponent Alpha;
//   - sizes are assigned to popularity ranks with a calibrated
//     correlation so the popularity-weighted mean size (the expected
//     requested-file size) matches AvgReqKB — in all four paper traces
//     popular files are smaller than average;
//   - the request stream is an i.i.d. sample of NumRequests draws.
func Synthesize(spec Spec) (*Trace, error) {
	if spec.NumFiles <= 0 {
		return nil, fmt.Errorf("trace: spec %q: NumFiles must be positive", spec.Name)
	}
	if spec.NumRequests < 0 {
		return nil, fmt.Errorf("trace: spec %q: NumRequests must be non-negative", spec.Name)
	}
	if spec.AvgFileKB <= 0 || spec.AvgReqKB <= 0 {
		return nil, fmt.Errorf("trace: spec %q: average sizes must be positive", spec.Name)
	}
	alpha := spec.Alpha
	if alpha == 0 {
		alpha = 0.8
	}
	sigma := spec.SigmaLog
	if sigma == 0 {
		sigma = 1.1
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	dist := zipfdist.MustNew(spec.NumFiles, alpha)

	// Raw log-normal sizes (unit median), ascending.
	raw := make([]float64, spec.NumFiles)
	for i := range raw {
		raw[i] = math.Exp(rng.NormFloat64() * sigma)
	}
	sort.Float64s(raw)

	// Calibrate the rank/size correlation: each rank i gets a blend key
	// mixing its normalized rank with noise; sizes (ascending) are
	// assigned in key order, so mix=1 gives perfect "popular is small"
	// correlation and mix=0 a random assignment. The popularity-weighted
	// mean is monotone in mix, so bisect on the target ratio.
	noise := make([]float64, spec.NumFiles)
	for i := range noise {
		noise[i] = rng.Float64()
	}
	targetRatio := spec.AvgReqKB / spec.AvgFileKB
	assign := func(mix float64) []int {
		type kv struct {
			key  float64
			rank int
		}
		keys := make([]kv, spec.NumFiles)
		for i := 0; i < spec.NumFiles; i++ {
			keys[i] = kv{key: mix*float64(i)/float64(spec.NumFiles) + (1-mix)*noise[i], rank: i}
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a].key < keys[b].key })
		// keys[j].rank receives the j'th smallest size.
		sizeOf := make([]int, spec.NumFiles)
		for j, k := range keys {
			sizeOf[k.rank] = j
		}
		return sizeOf
	}
	ratioOf := func(sizeOf []int) float64 {
		var weighted, mean float64
		for i := 0; i < spec.NumFiles; i++ {
			s := raw[sizeOf[i]]
			weighted += dist.P(i+1) * s
			mean += s
		}
		mean /= float64(spec.NumFiles)
		return weighted / mean
	}

	var sizeOf []int
	if ratioOf(assign(0)) <= targetRatio {
		// Even a random assignment already gives a ratio at or below the
		// target (can happen for targets near 1): use it.
		sizeOf = assign(0)
	} else {
		lo, hi := 0.0, 1.0
		for iter := 0; iter < 40; iter++ {
			mid := (lo + hi) / 2
			if ratioOf(assign(mid)) > targetRatio {
				lo = mid
			} else {
				hi = mid
			}
		}
		sizeOf = assign(hi)
	}

	// Scale sizes so the population mean matches AvgFileKB exactly; the
	// weighted/unweighted ratio is preserved under scaling.
	var meanRaw float64
	for _, j := range sizeOf {
		meanRaw += raw[j]
	}
	meanRaw /= float64(spec.NumFiles)
	scale := spec.AvgFileKB * 1024 / meanRaw

	t := &Trace{Name: spec.Name}
	t.Files = make([]File, spec.NumFiles)
	for i := 0; i < spec.NumFiles; i++ {
		size := int64(math.Round(raw[sizeOf[i]] * scale))
		if size < minFileBytes {
			size = minFileBytes
		}
		t.Files[i] = File{
			Name: fmt.Sprintf("/%s/doc%06d.html", spec.Name, i),
			Size: size,
		}
	}

	t.Requests = make([]int32, spec.NumRequests)
	for i := range t.Requests {
		t.Requests[i] = int32(dist.Rank(rng.Float64()) - 1)
	}
	return t, nil
}

// MustSynthesize is Synthesize for specs known to be valid.
func MustSynthesize(spec Spec) *Trace {
	t, err := Synthesize(spec)
	if err != nil {
		panic(err)
	}
	return t
}
