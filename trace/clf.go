package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseCLF reads a WWW server log in Common Log Format and builds a
// trace, mirroring the paper's preprocessing: incomplete requests (non-2xx
// status, missing size, or truncated transfers marked "-") are dropped,
// and only GET requests for static content are kept.
//
// A CLF line looks like:
//
//	host ident authuser [date] "GET /path HTTP/1.0" status bytes
//
// A file's size is taken as the largest successful transfer size observed
// for its path (real logs frequently log partial transfers).
func ParseCLF(name string, r io.Reader) (*Trace, error) {
	t := &Trace{Name: name}
	index := make(map[string]int32)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		path, size, ok := parseCLFLine(sc.Text())
		if !ok {
			continue
		}
		fi, seen := index[path]
		if !seen {
			fi = int32(len(t.Files))
			index[path] = fi
			t.Files = append(t.Files, File{Name: path, Size: size})
		} else if size > t.Files[fi].Size {
			t.Files[fi].Size = size
		}
		t.Requests = append(t.Requests, fi)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading CLF at line %d: %w", lineNo, err)
	}
	if len(t.Files) == 0 {
		return nil, fmt.Errorf("trace: no complete GET requests found in %s", name)
	}
	return t, nil
}

// parseCLFLine extracts (path, bytes) from one CLF line, reporting ok =
// false for malformed lines and requests the paper's methodology drops.
func parseCLFLine(line string) (path string, size int64, ok bool) {
	// Find the quoted request section.
	q1 := strings.IndexByte(line, '"')
	if q1 < 0 {
		return "", 0, false
	}
	q2 := strings.IndexByte(line[q1+1:], '"')
	if q2 < 0 {
		return "", 0, false
	}
	q2 += q1 + 1
	request := line[q1+1 : q2]
	rest := strings.Fields(line[q2+1:])
	if len(rest) < 2 {
		return "", 0, false
	}
	status, err := strconv.Atoi(rest[0])
	if err != nil || status < 200 || status >= 300 {
		return "", 0, false
	}
	if rest[1] == "-" {
		return "", 0, false
	}
	size, err = strconv.ParseInt(rest[1], 10, 64)
	if err != nil || size <= 0 {
		return "", 0, false
	}
	parts := strings.Fields(request)
	if len(parts) < 2 || parts[0] != "GET" {
		return "", 0, false
	}
	path = parts[1]
	// Strip query strings: the paper studies static content.
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	if path == "" || path[0] != '/' {
		return "", 0, false
	}
	return path, size, true
}
