// Package trace models WWW server traces: the set of files a server
// hosts and the sequence of requests clients issue against them.
//
// The paper evaluates PRESS with four real traces (Clarknet, Forth, Nasa,
// Rutgers) whose aggregate characteristics are given in its Table 1.
// Those traces are not redistributable, so this package synthesizes
// deterministic equivalents matched to Table 1: file count, average file
// size, request count, average requested-file size, and a Zipf-like
// popularity distribution (alpha = 0.8, per Section 4.1). A Common Log
// Format parser is provided for feeding real traces instead.
package trace

import (
	"fmt"
	"sort"
)

// File is one static document hosted by the server.
type File struct {
	// Name is the request path, unique within a trace.
	Name string
	// Size is the document size in bytes.
	Size int64
}

// Trace is a workload: a file population plus an ordered request stream.
// Requests reference files by index into Files.
type Trace struct {
	// Name identifies the trace (e.g. "clarknet").
	Name string
	// Files is the document population, ordered by popularity rank
	// (Files[0] is the most requested document).
	Files []File
	// Requests is the request stream; each entry indexes Files.
	Requests []int32
}

// Stats summarizes a trace in the units of the paper's Table 1.
type Stats struct {
	NumFiles    int
	AvgFileKB   float64 // average file size, KBytes
	NumRequests int
	AvgReqKB    float64 // average size of requested files, KBytes
	TotalBytes  int64   // sum of file sizes (working set), bytes
}

// Stats computes summary statistics for the trace.
func (t *Trace) Stats() Stats {
	var s Stats
	s.NumFiles = len(t.Files)
	s.NumRequests = len(t.Requests)
	var fileBytes int64
	for _, f := range t.Files {
		fileBytes += f.Size
	}
	s.TotalBytes = fileBytes
	if s.NumFiles > 0 {
		s.AvgFileKB = float64(fileBytes) / float64(s.NumFiles) / 1024
	}
	var reqBytes int64
	for _, ri := range t.Requests {
		reqBytes += t.Files[ri].Size
	}
	if s.NumRequests > 0 {
		s.AvgReqKB = float64(reqBytes) / float64(s.NumRequests) / 1024
	}
	return s
}

// Validate checks internal consistency: every request references an
// existing file, names are unique and non-empty, and sizes are positive.
func (t *Trace) Validate() error {
	names := make(map[string]struct{}, len(t.Files))
	for i, f := range t.Files {
		if f.Name == "" {
			return fmt.Errorf("trace %s: file %d has empty name", t.Name, i)
		}
		if f.Size <= 0 {
			return fmt.Errorf("trace %s: file %q has non-positive size %d", t.Name, f.Name, f.Size)
		}
		if _, dup := names[f.Name]; dup {
			return fmt.Errorf("trace %s: duplicate file name %q", t.Name, f.Name)
		}
		names[f.Name] = struct{}{}
	}
	for i, ri := range t.Requests {
		if ri < 0 || int(ri) >= len(t.Files) {
			return fmt.Errorf("trace %s: request %d references file %d of %d", t.Name, i, ri, len(t.Files))
		}
	}
	return nil
}

// Truncate returns a trace sharing the file population but keeping only
// the first n requests. It is used to run scaled-down experiments. If n
// exceeds the request count the original trace is returned.
func (t *Trace) Truncate(n int) *Trace {
	if n >= len(t.Requests) {
		return t
	}
	return &Trace{Name: t.Name, Files: t.Files, Requests: t.Requests[:n]}
}

// PopularityOrder returns file indices sorted by descending request count
// in this trace's request stream (ties broken by index). For synthesized
// traces this is close to identity by construction.
func (t *Trace) PopularityOrder() []int {
	counts := make([]int, len(t.Files))
	for _, ri := range t.Requests {
		counts[ri]++
	}
	order := make([]int, len(t.Files))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return counts[order[a]] > counts[order[b]]
	})
	return order
}
