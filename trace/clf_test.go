package trace

import (
	"strings"
	"testing"
)

const sampleCLF = `host1 - - [01/Mar/2000:00:00:01 -0500] "GET /index.html HTTP/1.0" 200 5120
host2 - - [01/Mar/2000:00:00:02 -0500] "GET /a/b.gif HTTP/1.0" 200 2048
host1 - - [01/Mar/2000:00:00:03 -0500] "GET /index.html HTTP/1.0" 200 5120
host3 - - [01/Mar/2000:00:00:04 -0500] "GET /missing.html HTTP/1.0" 404 312
host3 - - [01/Mar/2000:00:00:05 -0500] "POST /cgi-bin/form HTTP/1.0" 200 99
host4 - - [01/Mar/2000:00:00:06 -0500] "GET /a/b.gif HTTP/1.0" 200 -
host5 - - [01/Mar/2000:00:00:07 -0500] "GET /big.tar HTTP/1.0" 200 100000
host5 - - [01/Mar/2000:00:00:08 -0500] "GET /big.tar HTTP/1.0" 200 250000
host6 - - [01/Mar/2000:00:00:09 -0500] "GET /page?x=1 HTTP/1.0" 200 700
garbage line without quotes
host7 - - [01/Mar/2000:00:00:10 -0500] "GET /index.html HTTP/1.0" 304 0
`

func TestParseCLF(t *testing.T) {
	tr, err := ParseCLF("sample", strings.NewReader(sampleCLF))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Complete GETs: index.html x2, b.gif x1 (the "-" one dropped),
	// big.tar x2, page x1 (query stripped). 404, POST, garbage, 304-with-0
	// are all dropped.
	if got := len(tr.Requests); got != 6 {
		t.Fatalf("requests = %d, want 6", got)
	}
	if got := len(tr.Files); got != 4 {
		t.Fatalf("files = %d, want 4", got)
	}
	sizes := map[string]int64{}
	for _, f := range tr.Files {
		sizes[f.Name] = f.Size
	}
	if sizes["/index.html"] != 5120 {
		t.Errorf("/index.html size = %d", sizes["/index.html"])
	}
	// big.tar keeps the larger of the two observed sizes.
	if sizes["/big.tar"] != 250000 {
		t.Errorf("/big.tar size = %d, want 250000", sizes["/big.tar"])
	}
	if _, ok := sizes["/page"]; !ok {
		t.Error("query string not stripped to /page")
	}
}

func TestParseCLFEmpty(t *testing.T) {
	if _, err := ParseCLF("empty", strings.NewReader("")); err == nil {
		t.Fatal("expected error for empty log")
	}
	if _, err := ParseCLF("junk", strings.NewReader("404 nothing here\n")); err == nil {
		t.Fatal("expected error for log with no complete requests")
	}
}

func TestParseCLFLineEdgeCases(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
	}{
		{`h - - [d] "GET /x HTTP/1.0" 200 10`, true},
		{`h - - [d] "GET /x HTTP/1.0" 206 10`, true}, // partial content is 2xx
		{`h - - [d] "GET /x HTTP/1.0" 301 10`, false},
		{`h - - [d] "HEAD /x HTTP/1.0" 200 10`, false},
		{`h - - [d] "GET x HTTP/1.0" 200 10`, false},  // path must start with /
		{`h - - [d] "GET /x HTTP/1.0" 200 0`, false},  // zero bytes
		{`h - - [d] "GET /x HTTP/1.0" abc 10`, false}, // bad status
		{`h - - [d] "GET /x HTTP/1.0" 200`, false},    // missing size
		{`h - - [d] "GET" 200 10`, false},             // short request
		{`no quotes at all 200 10`, false},            //
		{`h - - [d] "GET /x?q=2 HTTP/1.0" 200 5`, true},
	}
	for _, c := range cases {
		_, _, ok := parseCLFLine(c.line)
		if ok != c.ok {
			t.Errorf("parseCLFLine(%q) ok=%v, want %v", c.line, ok, c.ok)
		}
	}
}
