package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format: a magic string, a format version, then
// varint-encoded counts, file records (name length, name bytes, size),
// and delta-free request indices. The format is self-contained and
// stdlib-only so traces can be synthesized once and replayed by any tool.
const (
	traceMagic   = "PRESSTRC"
	traceVersion = 1
)

// WriteTo serializes the trace in the binary trace format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	buf := make([]byte, binary.MaxVarintLen64)
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf, v)
		_, err := cw.Write(buf[:n])
		return err
	}
	if _, err := io.WriteString(cw, traceMagic); err != nil {
		return cw.n, err
	}
	if err := putUvarint(traceVersion); err != nil {
		return cw.n, err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return cw.n, err
	}
	if _, err := io.WriteString(cw, t.Name); err != nil {
		return cw.n, err
	}
	if err := putUvarint(uint64(len(t.Files))); err != nil {
		return cw.n, err
	}
	for _, f := range t.Files {
		if err := putUvarint(uint64(len(f.Name))); err != nil {
			return cw.n, err
		}
		if _, err := io.WriteString(cw, f.Name); err != nil {
			return cw.n, err
		}
		if err := putUvarint(uint64(f.Size)); err != nil {
			return cw.n, err
		}
	}
	if err := putUvarint(uint64(len(t.Requests))); err != nil {
		return cw.n, err
	}
	for _, ri := range t.Requests {
		if err := putUvarint(uint64(ri)); err != nil {
			return cw.n, err
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadFrom deserializes a trace written by WriteTo, replacing t.
func (t *Trace) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{r: bufio.NewReaderSize(r, 1<<16)}
	br := cr.r.(*bufio.Reader)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return cr.n, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return cr.n, fmt.Errorf("trace: bad magic %q", magic)
	}
	readUvarint := func() (uint64, error) {
		v, err := binary.ReadUvarint(&trackedByteReader{br: br, cr: cr})
		return v, err
	}
	version, err := readUvarint()
	if err != nil {
		return cr.n, err
	}
	if version != traceVersion {
		return cr.n, fmt.Errorf("trace: unsupported format version %d", version)
	}
	nameLen, err := readUvarint()
	if err != nil {
		return cr.n, err
	}
	const maxName = 1 << 20
	if nameLen > maxName {
		return cr.n, fmt.Errorf("trace: name length %d too large", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(cr, nameBuf); err != nil {
		return cr.n, err
	}
	nFiles, err := readUvarint()
	if err != nil {
		return cr.n, err
	}
	const maxFiles = 1 << 28
	if nFiles > maxFiles {
		return cr.n, fmt.Errorf("trace: file count %d too large", nFiles)
	}
	files := make([]File, nFiles)
	for i := range files {
		l, err := readUvarint()
		if err != nil {
			return cr.n, err
		}
		if l > maxName {
			return cr.n, fmt.Errorf("trace: file name length %d too large", l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(cr, b); err != nil {
			return cr.n, err
		}
		size, err := readUvarint()
		if err != nil {
			return cr.n, err
		}
		files[i] = File{Name: string(b), Size: int64(size)}
	}
	nReqs, err := readUvarint()
	if err != nil {
		return cr.n, err
	}
	const maxReqs = 1 << 32
	if nReqs > maxReqs {
		return cr.n, fmt.Errorf("trace: request count %d too large", nReqs)
	}
	reqs := make([]int32, nReqs)
	for i := range reqs {
		v, err := readUvarint()
		if err != nil {
			return cr.n, err
		}
		if v >= nFiles {
			return cr.n, fmt.Errorf("trace: request %d references file %d of %d", i, v, nFiles)
		}
		reqs[i] = int32(v)
	}
	t.Name = string(nameBuf)
	t.Files = files
	t.Requests = reqs
	return cr.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// trackedByteReader lets binary.ReadUvarint pull single bytes from the
// buffered reader while keeping the byte count accurate.
type trackedByteReader struct {
	br *bufio.Reader
	cr *countingReader
}

func (t *trackedByteReader) ReadByte() (byte, error) {
	b, err := t.br.ReadByte()
	if err == nil {
		t.cr.n++
	}
	return b, err
}
