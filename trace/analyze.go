package trace

import (
	"fmt"
	"math"
	"sort"
)

// Popularity summarizes the request distribution of a trace.
type Popularity struct {
	// Alpha is the fitted Zipf-like exponent: request counts follow
	// count(rank) ~ rank^-alpha (WWW workloads: alpha < 1, typically
	// around 0.8 per Breslau et al., which the paper's model adopts).
	Alpha float64
	// R2 is the goodness of fit of the log-log regression.
	R2 float64
	// DistinctFiles is the number of files requested at least once.
	DistinctFiles int
	// Top10Share is the fraction of requests going to the most popular
	// 10% of requested files — a quick skew indicator.
	Top10Share float64
}

// AnalyzePopularity fits a Zipf-like exponent to the trace's request
// stream by ordinary least squares on log(count) vs log(rank). Files
// with fewer than two requests are excluded from the fit (the tail of
// an empirical Zipf sample flattens into singletons and would bias
// alpha down).
func (t *Trace) AnalyzePopularity() (Popularity, error) {
	if len(t.Requests) == 0 {
		return Popularity{}, fmt.Errorf("trace: no requests to analyze")
	}
	counts := make(map[int32]int)
	for _, ri := range t.Requests {
		counts[ri]++
	}
	ordered := make([]int, 0, len(counts))
	for _, c := range counts {
		ordered = append(ordered, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ordered)))

	var p Popularity
	p.DistinctFiles = len(ordered)
	topN := (len(ordered) + 9) / 10
	top := 0
	for _, c := range ordered[:topN] {
		top += c
	}
	p.Top10Share = float64(top) / float64(len(t.Requests))

	// OLS over log-log points with count >= 2.
	var n int
	var sx, sy, sxx, sxy, syy float64
	for rank, c := range ordered {
		if c < 2 {
			break
		}
		x := math.Log(float64(rank + 1))
		y := math.Log(float64(c))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
		n++
	}
	if n < 3 {
		return p, fmt.Errorf("trace: too few repeated files (%d) to fit alpha", n)
	}
	fn := float64(n)
	denom := fn*sxx - sx*sx
	if denom == 0 {
		return p, fmt.Errorf("trace: degenerate popularity distribution")
	}
	slope := (fn*sxy - sx*sy) / denom
	p.Alpha = -slope
	// R^2 of the regression.
	ssTot := syy - sy*sy/fn
	ssRes := ssTot - slope*(sxy-sx*sy/fn)
	if ssTot > 0 {
		p.R2 = 1 - ssRes/ssTot
	}
	return p, nil
}
