package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"press/stats"
)

// Unit-aware value formatting: families follow the convention of
// suffixing the unit, and the text report renders accordingly.
//
//	*_ns     → humanized duration
//	*_bytes  → humanized byte size
//	anything else → count with K/M suffixes
func formatValue(key string, v int64) string {
	family, _ := Family(key)
	switch {
	case strings.HasSuffix(family, "_ns"):
		return time.Duration(v).Round(time.Microsecond).String()
	case strings.HasSuffix(family, "_bytes"):
		return stats.FormatBytes(v)
	default:
		return stats.FormatCount(v)
	}
}

func formatFloatValue(key string, v float64) string {
	family, _ := Family(key)
	switch {
	case strings.HasSuffix(family, "_ns"):
		return time.Duration(v).Round(time.Microsecond).String()
	case strings.HasSuffix(family, "_bytes"):
		return stats.FormatBytes(int64(v))
	case strings.HasSuffix(family, "_util") || strings.HasSuffix(family, "_frac"):
		return fmt.Sprintf("%.1f%%", v*100)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Tables renders the snapshot into stats.Renderer blocks: one table of
// counters, one of gauges, one of histograms with count/mean/quantiles.
// Empty sections are omitted.
func (s Snapshot) Tables() []stats.Renderer {
	var blocks []stats.Renderer
	if len(s.Counters) > 0 {
		t := stats.NewTable("counter", "value", "raw")
		for _, k := range sortedKeys(s.Counters) {
			v := s.Counters[k]
			t.AddRow(k, formatValue(k, v), fmt.Sprint(v))
		}
		blocks = append(blocks, t)
	}
	if len(s.Gauges) > 0 || len(s.FloatGauges) > 0 {
		t := stats.NewTable("gauge", "value")
		for _, k := range sortedKeys(s.Gauges) {
			t.AddRow(k, formatValue(k, s.Gauges[k]))
		}
		for _, k := range sortedKeys(s.FloatGauges) {
			t.AddRow(k, formatFloatValue(k, s.FloatGauges[k]))
		}
		blocks = append(blocks, t)
	}
	if len(s.Histograms) > 0 {
		t := stats.NewTable("histogram", "count", "mean", "p50", "p90", "p99", "max")
		for _, k := range sortedKeys(s.Histograms) {
			h := s.Histograms[k]
			t.AddRow(k,
				stats.FormatCount(h.Count),
				formatFloatValue(k, h.Mean()),
				formatFloatValue(k, h.Quantile(0.50)),
				formatFloatValue(k, h.Quantile(0.90)),
				formatFloatValue(k, h.Quantile(0.99)),
				formatValue(k, h.Max))
		}
		blocks = append(blocks, t)
	}
	return blocks
}

// Text renders the snapshot as a fixed-width text report via the shared
// stats.Renderer path.
func (s Snapshot) Text() string {
	var b strings.Builder
	_ = stats.RenderAll(&b, s.Tables()...)
	return b.String()
}

// WriteJSON writes the snapshot as indented JSON, for scraping and
// external plotting.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Report writes the registry's current contents as a text report; a
// disabled (nil) registry writes a one-line note so operators see that
// metrics were off rather than empty.
func (r *Registry) Report(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "metrics: disabled (nil registry)\n")
		return err
	}
	_, err := io.WriteString(w, r.Snapshot().Text())
	return err
}
