// Package metrics is the cluster-wide observability substrate: lock-cheap
// counters, gauges, and log-scale histograms, grouped into a Registry of
// labeled families with Snapshot/Diff views and text/JSON reporting.
//
// The paper's entire argument rests on measuring intra-cluster
// communication — processor overhead per message, copied bytes, remote
// memory writes, and per-resource utilization (Sections 3–5). This
// package is the one place those numbers accumulate: the software VIA
// layer, the real server, and the discrete-event simulator all write
// into a Registry, and the report they produce lines up with the paper's
// tables and figures (see EXPERIMENTS.md).
//
// Instruments are nil-safe: every method on a nil *Counter, *Gauge,
// *FloatGauge, or *Histogram is a no-op, and a nil *Registry hands out
// nil instruments. Code therefore instruments its hot paths
// unconditionally and pays only a predictable nil-check when metrics are
// disabled; the send-path benchmarks in bench_test.go hold this to <5%
// overhead.
package metrics

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use; a nil Counter discards writes.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter not attached to any registry.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n (n < 0 is ignored: counters only go
// up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer level: queue depths, window
// occupancy, connection counts. The zero value is ready to use; a nil
// Gauge discards writes.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a standalone gauge not attached to any registry.
func NewGauge() *Gauge { return &Gauge{} }

// Set installs an absolute level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the level by delta (either sign).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an instantaneous float level: utilizations, rates,
// fractions. The zero value is ready to use; a nil FloatGauge discards
// writes.
type FloatGauge struct {
	bits atomic.Uint64
}

// NewFloatGauge returns a standalone float gauge not attached to any
// registry.
func NewFloatGauge() *FloatGauge { return &FloatGauge{} }

// Set installs an absolute level.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current level (0 for a nil FloatGauge).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
