package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	g := NewGauge()
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	f := NewFloatGauge()
	f.Set(0.625)
	if got := f.Value(); got != 0.625 {
		t.Errorf("float gauge = %v, want 0.625", got)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var f *FloatGauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	f.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || f.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments must read zero")
	}

	var r *Registry
	if r.Enabled() {
		t.Error("nil registry reports enabled")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.FloatGauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry must hand out nil instruments")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var b bytes.Buffer
	if err := r.Report(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "disabled") {
		t.Errorf("nil registry report = %q, want disabled note", b.String())
	}
}

// TestBucketRoundTrip checks the bucket layout invariants the quantile
// error bound rests on: every value lands in a bucket whose bounds
// contain it, and indices are monotone in the value.
func TestBucketRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 2, 15, 16, 17, 31, 32, 33, 63, 64, 1000, 4095, 4096,
		1 << 20, 1<<20 + 1, 1<<40 - 1, 1 << 40, math.MaxInt64}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Int63())
	}
	prevIdx, prevVal := -1, int64(-1)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("value %d: bucket %d out of range", v, idx)
		}
		low, width := bucketBounds(idx)
		// v-low < width, written to avoid low+width overflowing in the
		// topmost octave.
		if v < low || v-low >= width {
			t.Fatalf("value %d outside bucket %d bounds [%d, +%d)", v, idx, low, width)
		}
		if v > prevVal && idx < prevIdx {
			t.Fatalf("bucket index not monotone: %d(%d) after %d(%d)", v, idx, prevVal, prevIdx)
		}
		prevIdx, prevVal = idx, v
	}
}

// TestHistogramSmallValuesExact: values below 2^subBits are recorded in
// unit buckets, so their quantiles are exact.
func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 16; v++ {
		h.Observe(v)
	}
	s := h.snapshot()
	for i := 1; i <= 16; i++ {
		q := float64(i) / 16
		want := float64(i - 1)
		if got := s.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

// TestHistogramQuantileAccuracy asserts the documented log-bucket error
// bound: reported quantiles are within 2^-(subBits+1) relative error of
// the exact sample quantile for values >= 2^subBits.
func TestHistogramQuantileAccuracy(t *testing.T) {
	const n = 50000
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	samples := make([]int64, n)
	for i := range samples {
		// Log-uniform over [16, ~1e9): exercises many octaves.
		v := int64(math.Exp(rng.Float64()*math.Log(1e9-16)) + 16)
		samples[i] = v
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	s := h.snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	bound := 1.0 / float64(int64(2)<<subBits) // 2^-(subBits+1)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		rank := int(math.Ceil(q*float64(n))) - 1
		if rank < 0 {
			rank = 0
		}
		exact := float64(samples[rank])
		got := s.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > bound {
			t.Errorf("Quantile(%v) = %v, exact %v: relative error %.4f > bound %.4f",
				q, got, exact, rel, bound)
		}
	}
	// The exact-sum mean has no bucketing error at all.
	var sum float64
	for _, v := range samples {
		sum += float64(v)
	}
	if got, want := s.Mean(), sum/n; math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if s.Min != samples[0] || s.Max != samples[n-1] {
		t.Errorf("min/max = %d/%d, want %d/%d", s.Min, s.Max, samples[0], samples[n-1])
	}
}

func TestRegistryInternsInstruments(t *testing.T) {
	r := NewRegistry()
	if !r.Enabled() {
		t.Error("real registry reports disabled")
	}
	a := r.Counter("msgs_total", "node=0", "type=File")
	b := r.Counter("msgs_total", "node=0", "type=File")
	if a != b {
		t.Error("same family+labels must intern to one counter")
	}
	if c := r.Counter("msgs_total", "node=1", "type=File"); c == a {
		t.Error("different labels must be distinct instruments")
	}
	if r.Histogram("lat_ns") != r.Histogram("lat_ns") {
		t.Error("histogram interning broken")
	}
	key := Key("msgs_total", "node=0", "type=File")
	if key != "msgs_total{node=0,type=File}" {
		t.Errorf("Key = %q", key)
	}
	fam, labels := Family(key)
	if fam != "msgs_total" || labels != "node=0,type=File" {
		t.Errorf("Family(%q) = %q, %q", key, fam, labels)
	}
}

func TestSnapshotDiffSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	g := r.Gauge("depth")
	h := r.Histogram("lat_ns")
	c.Add(10)
	g.Set(3)
	h.Observe(100)
	base := r.Snapshot()
	c.Add(5)
	g.Set(9)
	h.Observe(200)
	h.Observe(300)
	d := r.Snapshot().Diff(base)
	if got := d.Counters["reqs_total"]; got != 5 {
		t.Errorf("diffed counter = %d, want 5", got)
	}
	if got := d.Gauges["depth"]; got != 9 {
		t.Errorf("diffed gauge = %d, want current level 9", got)
	}
	hd := d.Histograms["lat_ns"]
	if hd.Count != 2 || hd.Sum != 500 {
		t.Errorf("diffed histogram count/sum = %d/%d, want 2/500", hd.Count, hd.Sum)
	}
}

// TestSnapshotDiffConcurrent hammers one registry from many writers
// while the reader snapshots and diffs. Run under -race (the check gate
// does); the assertions verify that diffs of monotonic instruments
// never go negative and that the final totals add up.
func TestSnapshotDiffConcurrent(t *testing.T) {
	r := NewRegistry()
	const (
		writers = 8
		perW    = 20000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("ops_total")
			h := r.Histogram("size_bytes")
			g := r.Gauge("level")
			for i := 0; i < perW; i++ {
				c.Inc()
				h.Observe(int64(i % 4096))
				g.Add(1)
			}
		}(w)
	}
	readerDone := make(chan error, 1)
	go func() {
		prev := r.Snapshot()
		for {
			select {
			case <-stop:
				readerDone <- nil
				return
			default:
			}
			cur := r.Snapshot()
			d := cur.Diff(prev)
			if d.Counters["ops_total"] < 0 {
				readerDone <- errNegative("counter")
				return
			}
			if hd := d.Histograms["size_bytes"]; hd.Count < 0 {
				readerDone <- errNegative("histogram count")
				return
			}
			prev = cur
		}
	}()
	wg.Wait()
	close(stop)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}
	final := r.Snapshot()
	if got := final.Counters["ops_total"]; got != writers*perW {
		t.Errorf("final counter = %d, want %d", got, writers*perW)
	}
	if got := final.Histograms["size_bytes"].Count; got != writers*perW {
		t.Errorf("final histogram count = %d, want %d", got, writers*perW)
	}
	if got := final.Gauges["level"]; got != writers*perW {
		t.Errorf("final gauge = %d, want %d", got, writers*perW)
	}
}

type errNegative string

func (e errNegative) Error() string { return "negative diff on monotonic " + string(e) }

func TestReportTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("press_msgs_total", "node=0", "type=File").Add(1200)
	r.Counter("press_copied_bytes", "node=0").Add(5 << 20)
	r.Gauge("via_workq_depth", "nic=node0").Set(4)
	r.FloatGauge("sim_cpu_util", "node=0").Set(0.42)
	h := r.Histogram("via_send_latency_ns", "nic=node0")
	h.Observe(1500)
	h.Observe(90000)

	text := r.Snapshot().Text()
	for _, want := range []string{
		"press_msgs_total{node=0,type=File}",
		"press_copied_bytes{node=0}", "5.0 MB",
		"via_workq_depth{nic=node0}",
		"sim_cpu_util{node=0}", "42.0%",
		"via_send_latency_ns{nic=node0}", "p99",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q in:\n%s", want, text)
		}
	}

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters[Key("press_msgs_total", "node=0", "type=File")] != 1200 {
		t.Error("JSON round-trip lost counter")
	}
	if back.Histograms[Key("via_send_latency_ns", "nic=node0")].Count != 2 {
		t.Error("JSON round-trip lost histogram")
	}
}
