package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestKeyCanonicalizesLabelOrder: two call sites naming the same label
// set in different orders must intern the same instrument.
func TestKeyCanonicalizesLabelOrder(t *testing.T) {
	a := Key("f", "node=0", "type=Load")
	b := Key("f", "type=Load", "node=0")
	if a != b {
		t.Errorf("Key label order leaked: %q != %q", a, b)
	}
	if want := "f{node=0,type=Load}"; a != want {
		t.Errorf("canonical key = %q, want %q", a, want)
	}
	reg := NewRegistry()
	if reg.Counter("f", "node=0", "type=Load") != reg.Counter("f", "type=Load", "node=0") {
		t.Error("label order produced two instruments for one label set")
	}
}

// TestSortKeysGroupsFamilies: byte order alone puts "f_sub" between
// "f" and "f{...}" because '_' < '{'; report order must keep each
// family's series contiguous.
func TestSortKeysGroupsFamilies(t *testing.T) {
	keys := []string{"f{node=1}", "f_sub", "f{node=0}", "f", "a{x=2}"}
	SortKeys(keys)
	want := []string{"a{x=2}", "f", "f{node=0}", "f{node=1}", "f_sub"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("SortKeys order = %v, want %v", keys, want)
		}
	}
}

// TestReportGolden locks the text report byte-for-byte against a
// registry populated in scrambled order: sorted families, sorted label
// sets, and no map-iteration-order leakage across renders.
func TestReportGolden(t *testing.T) {
	build := func(perm []int) *Registry {
		reg := NewRegistry()
		add := []func(){
			func() { reg.Counter("press_requests_total", "node=1").Add(7) },
			func() { reg.Counter("press_requests_total", "node=0").Add(42) },
			func() { reg.Counter("press_msgs_total", "type=Load", "node=0").Add(3) },
			func() { reg.Gauge("press_queue_depth", "node=0").Set(5) },
			func() { reg.FloatGauge("press_disk_util", "node=0").Set(0.25) },
			func() {
				h := reg.Histogram("press_queue_delay_ns", "node=0")
				for i := 0; i < 4; i++ {
					h.Observe(8)
				}
			},
		}
		for _, i := range perm {
			add[i]()
		}
		return reg
	}

	first := build([]int{0, 1, 2, 3, 4, 5}).Snapshot().Text()
	if !strings.Contains(first, "press_msgs_total{node=0,type=Load}") {
		t.Errorf("report does not use the canonical sorted label spelling:\n%s", first)
	}
	// The exact rendering is pinned by comparing permuted insertion
	// orders and repeated renders: all must be byte-identical.
	for _, perm := range [][]int{{5, 4, 3, 2, 1, 0}, {2, 0, 5, 3, 1, 4}} {
		if got := build(perm).Snapshot().Text(); got != first {
			t.Errorf("report depends on insertion order:\ngot:\n%s\nwant:\n%s", got, first)
		}
	}
	snap := build([]int{0, 1, 2, 3, 4, 5}).Snapshot()
	for i := 0; i < 5; i++ {
		if got := snap.Text(); got != first {
			t.Fatalf("render %d differs — map iteration order leaking", i)
		}
	}
	// Counters render before gauges before histograms, each family
	// block contiguous and sorted.
	idx := func(s string) int { return strings.Index(first, s) }
	if !(idx("press_msgs_total") < idx("press_requests_total{node=0}") &&
		idx("press_requests_total{node=0}") < idx("press_requests_total{node=1}") &&
		idx("press_requests_total{node=1}") < idx("press_queue_depth") &&
		idx("press_queue_depth") < idx("press_disk_util") &&
		idx("press_disk_util") < idx("press_queue_delay_ns")) {
		t.Errorf("report order wrong:\n%s", first)
	}
}

// TestHistogramEmptyQuantiles: a histogram with no observations answers
// 0 for every quantile and mean, not NaN or a panic.
func TestHistogramEmptyQuantiles(t *testing.T) {
	s := NewHistogram().Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if s.Mean() != 0 {
		t.Errorf("empty Mean = %v, want 0", s.Mean())
	}
	// Diffing two empty snapshots stays empty.
	d := s.Diff(HistogramSnapshot{})
	if d.Count != 0 || len(d.Buckets) != 0 {
		t.Errorf("empty Diff = %+v, want empty", d)
	}
}

// TestHistogramSingleBucket: all mass in one unit-wide bucket answers
// that exact value at every quantile.
func TestHistogramSingleBucket(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10; i++ {
		h.Observe(7)
	}
	s := h.Snapshot()
	if len(s.Buckets) != 1 {
		t.Fatalf("buckets = %d, want 1", len(s.Buckets))
	}
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 7 {
			t.Errorf("single-bucket Quantile(%v) = %v, want 7", q, got)
		}
	}
}

// TestHistogramDiffReset: diffing against a base with *higher* counts
// (a wiped-and-rebuilt instrument under the same key) must not emit
// negative buckets; Count/Sum go negative by arithmetic, which is the
// caller's reset signal.
func TestHistogramDiffReset(t *testing.T) {
	young := NewHistogram()
	young.Observe(5)
	old := NewHistogram()
	for i := 0; i < 100; i++ {
		old.Observe(5)
		old.Observe(1000)
	}
	d := young.Snapshot().Diff(old.Snapshot())
	if d.Count >= 0 {
		t.Errorf("reset Diff Count = %d, want negative (the reset signal)", d.Count)
	}
	for _, b := range d.Buckets {
		if b.Count <= 0 {
			t.Errorf("Diff emitted non-positive bucket %+v", b)
		}
	}
}

// TestSnapshotConcurrentWithWrites hammers every instrument kind while
// snapshotting and diffing; meaningful under -race, and asserts
// monotonic counter reads across snapshots.
func TestSnapshotConcurrentWithWrites(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total")
	g := reg.Gauge("g")
	h := reg.Histogram("h_ns")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					g.Set(i)
					h.Observe(i % 4096)
				}
			}
		}()
	}
	prev := reg.Snapshot()
	for i := 0; i < 200; i++ {
		cur := reg.Snapshot()
		d := cur.Diff(prev)
		if d.Counters["c_total"] < 0 {
			t.Fatalf("counter went backwards: diff %d", d.Counters["c_total"])
		}
		if dh := d.Histograms["h_ns"]; dh.Count < 0 {
			t.Fatalf("histogram count went backwards: diff %d", dh.Count)
		}
		prev = cur
	}
	close(stop)
	wg.Wait()
}
