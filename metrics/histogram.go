package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: values below 2^subBits land in exact
// unit-wide buckets; above that, each power-of-two octave is split into
// 2^subBits linear sub-buckets. Reporting a bucket's midpoint therefore
// bounds the relative reconstruction error by 2^-(subBits+1) — 3.125%
// with subBits = 4 — which is the error bound the quantile tests assert.
const (
	subBits    = 4
	subBuckets = 1 << subBits // linear sub-buckets per octave
	// numBuckets covers all non-negative int64 values: exact buckets
	// [0, 16), then (63-subBits) octaves of subBuckets each.
	numBuckets = (62 - subBits + 1 + 1) * subBuckets
)

// bucketIndex maps a value to its bucket. Negative values clamp to
// bucket 0 (they do not occur for the durations and sizes recorded
// here, but must not corrupt the histogram).
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // 2^exp <= v < 2^(exp+1)
	shift := uint(exp - subBits)
	sub := int((uint64(v) >> shift) & (subBuckets - 1))
	return (exp-subBits+1)<<subBits + sub
}

// bucketBounds returns a bucket's inclusive lower bound and its width.
func bucketBounds(idx int) (low, width int64) {
	if idx < subBuckets {
		return int64(idx), 1
	}
	block := idx >> subBits
	sub := int64(idx & (subBuckets - 1))
	exp := uint(block + subBits - 1)
	width = 1 << (exp - subBits)
	return 1<<exp + sub*width, width
}

// bucketMid returns the value a bucket reports for its members: the
// midpoint of the integers it can hold, which is exact for the
// unit-wide buckets below 2^subBits.
func bucketMid(idx int) float64 {
	low, width := bucketBounds(idx)
	return float64(low) + float64(width-1)/2
}

// Histogram records a distribution of non-negative int64 observations
// (latencies in nanoseconds, sizes in bytes) in log-scale buckets with
// bounded relative error. Observations are a single atomic add on the
// owning bucket plus count/sum/extrema updates — safe for concurrent
// writers, no locks. A nil Histogram discards observations.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	min   atomic.Int64 // valid only when count > 0
	max   atomic.Int64
	bkts  [numBuckets]atomic.Int64
}

// NewHistogram returns a standalone histogram not attached to any
// registry.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.bkts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations (0 for a nil Histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot captures a point-in-time copy of the histogram for quantile
// queries and diffing. Safe on a nil Histogram (empty snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot { return h.snapshot() }

// snapshot captures a consistent-enough view for reporting. Concurrent
// observers may land between the bucket reads; the per-bucket counts are
// each atomic, and Diff against a later snapshot heals any skew.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{}
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	for i := range h.bkts {
		if n := h.bkts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Index: i, Count: n})
		}
	}
	return s
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	Index int   `json:"index"`
	Count int64 `json:"count"`
}

// Low returns the bucket's inclusive lower bound.
func (b Bucket) Low() int64 { low, _ := bucketBounds(b.Index); return low }

// HistogramSnapshot is a point-in-time copy of a histogram, suitable
// for quantile queries and diffing.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min,omitempty"`
	Max     int64    `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the exact mean of the observations (sum is tracked
// outside the buckets), or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the recorded
// distribution. The answer is the midpoint of the bucket holding the
// rank, clamped to the observed min/max, so its relative error is
// bounded by the bucket width: at most 2^-(subBits+1) ≈ 3.125% for
// values ≥ 16 and exact below. Returns 0 with no observations.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			v := bucketMid(b.Index)
			if v < float64(s.Min) {
				v = float64(s.Min)
			}
			if v > float64(s.Max) {
				v = float64(s.Max)
			}
			return v
		}
	}
	return float64(s.Max)
}

// Diff returns the distribution of observations made after base was
// taken: per-bucket counts, Count, and Sum subtract; Min/Max keep this
// snapshot's values (extrema are not invertible).
func (s HistogramSnapshot) Diff(base HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: s.Count - base.Count,
		Sum:   s.Sum - base.Sum,
		Min:   s.Min,
		Max:   s.Max,
	}
	baseCount := make(map[int]int64, len(base.Buckets))
	for _, b := range base.Buckets {
		baseCount[b.Index] = b.Count
	}
	for _, b := range s.Buckets {
		if n := b.Count - baseCount[b.Index]; n > 0 {
			out.Buckets = append(out.Buckets, Bucket{Index: b.Index, Count: n})
		}
	}
	return out
}
