package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// A Registry groups instruments into labeled families: a family names
// one measured quantity ("via_sends_total"), labels distinguish the
// sources ("nic=node0"). Lookups intern instruments — asking twice for
// the same family+labels returns the same instrument — so hot paths
// resolve their instruments once at setup and then touch only atomics.
//
// A nil *Registry is the disabled registry: every lookup returns a nil
// instrument whose methods no-op, and Snapshot returns an empty view.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	floatGauges map[string]*FloatGauge
	histograms  map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		floatGauges: make(map[string]*FloatGauge),
		histograms:  make(map[string]*Histogram),
	}
}

// Enabled reports whether instruments from this registry record
// anything; it is false exactly for a nil Registry.
func (r *Registry) Enabled() bool { return r != nil }

// Key builds the canonical instrument key for a family and its labels:
// family{label1,label2}. Labels are conventionally "k=v" strings and
// are canonicalized to sorted order, so two call sites naming the same
// label set in different orders intern the same instrument and every
// exposition surface (report tables, Prometheus text) emits one stable
// spelling.
func Key(family string, labels ...string) string {
	if len(labels) == 0 {
		return family
	}
	if !sort.StringsAreSorted(labels) {
		labels = append([]string(nil), labels...)
		sort.Strings(labels)
	}
	return family + "{" + strings.Join(labels, ",") + "}"
}

// Family splits an instrument key back into its family and label part
// (label part is empty when the key carries no labels).
func Family(key string) (family, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], strings.TrimSuffix(key[i+1:], "}")
	}
	return key, ""
}

// Counter returns the counter for family+labels, creating it on first
// use. Returns nil on a nil Registry.
func (r *Registry) Counter(family string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	k := Key(family, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = NewCounter()
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for family+labels, creating it on first use.
// Returns nil on a nil Registry.
func (r *Registry) Gauge(family string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	k := Key(family, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = NewGauge()
		r.gauges[k] = g
	}
	return g
}

// FloatGauge returns the float gauge for family+labels, creating it on
// first use. Returns nil on a nil Registry.
func (r *Registry) FloatGauge(family string, labels ...string) *FloatGauge {
	if r == nil {
		return nil
	}
	k := Key(family, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.floatGauges[k]
	if !ok {
		g = NewFloatGauge()
		r.floatGauges[k] = g
	}
	return g
}

// Histogram returns the histogram for family+labels, creating it on
// first use. Returns nil on a nil Registry.
func (r *Registry) Histogram(family string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	k := Key(family, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[k]
	if !ok {
		h = NewHistogram()
		r.histograms[k] = h
	}
	return h
}

// Snapshot is a point-in-time view of every instrument in a registry,
// keyed by the canonical family{labels} key. Snapshots are plain data:
// they marshal to JSON, render as text, and Diff against an earlier
// snapshot of the same registry.
type Snapshot struct {
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	FloatGauges map[string]float64           `json:"floatGauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value. On a nil Registry
// it returns an empty snapshot. Individual reads are atomic; the
// snapshot as a whole is not a consistent cut under concurrent writers,
// which is fine for the monotonic counters and statistical views it
// serves.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:    map[string]int64{},
		Gauges:      map[string]int64{},
		FloatGauges: map[string]float64{},
		Histograms:  map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g
	}
	floatGauges := make(map[string]*FloatGauge, len(r.floatGauges))
	for k, g := range r.floatGauges {
		floatGauges[k] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, h := range r.histograms {
		histograms[k] = h
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, g := range floatGauges {
		s.FloatGauges[k] = g.Value()
	}
	for k, h := range histograms {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// Diff returns the activity between base and this snapshot: counters
// and histograms subtract; gauges and float gauges keep this snapshot's
// level (levels have no meaningful delta). Instruments absent from base
// diff against zero.
func (s Snapshot) Diff(base Snapshot) Snapshot {
	out := Snapshot{
		Counters:    make(map[string]int64, len(s.Counters)),
		Gauges:      make(map[string]int64, len(s.Gauges)),
		FloatGauges: make(map[string]float64, len(s.FloatGauges)),
		Histograms:  make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v - base.Counters[k]
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.FloatGauges {
		out.FloatGauges[k] = v
	}
	for k, h := range s.Histograms {
		out.Histograms[k] = h.Diff(base.Histograms[k])
	}
	return out
}

// SortKeys sorts instrument keys in place into deterministic report
// order: by family, then by label string. Plain byte order is not
// enough — '{' sorts after '_', so "f_sub" would wedge between "f" and
// "f{node=0}" and split the f family apart. Every exposition surface
// (report tables, JSON consumers, telemetry's Prometheus writer) uses
// this order so output is byte-stable run to run.
func SortKeys(keys []string) {
	sort.Slice(keys, func(i, j int) bool {
		fi, li := Family(keys[i])
		fj, lj := Family(keys[j])
		if fi != fj {
			return fi < fj
		}
		return li < lj
	})
}

// sortedKeys returns map keys in deterministic report order: by family,
// then by label string (so "f{node=0}" sorts before "f{node=1}").
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	SortKeys(keys)
	return keys
}

// String summarizes the snapshot's size, mostly for debugging.
func (s Snapshot) String() string {
	return fmt.Sprintf("metrics.Snapshot{%d counters, %d gauges, %d histograms}",
		len(s.Counters), len(s.Gauges)+len(s.FloatGauges), len(s.Histograms))
}
