package via

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

const testTimeout = 5 * time.Second

// pair builds two connected reliable VIs on fresh NICs.
func pair(t *testing.T, rel Reliability) (*Fabric, *NIC, *NIC, *VI, *VI) {
	t.Helper()
	f := NewFabric()
	t.Cleanup(f.Close)
	na, err := f.CreateNIC("nodeA")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := f.CreateNIC("nodeB")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := nb.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	vb, err := nb.CreateVI(rel, 16)
	if err != nil {
		t.Fatal(err)
	}
	va, err := na.CreateVI(rel, 16)
	if err != nil {
		t.Fatal(err)
	}
	acceptErr := make(chan error, 1)
	go func() {
		_, err := ln.Accept(vb)
		acceptErr <- err
	}()
	if err := va.Connect("nodeB", "svc"); err != nil {
		t.Fatal(err)
	}
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}
	return f, na, nb, va, vb
}

// sendRecv pushes msg from va to vb through registered buffers.
func sendRecv(t *testing.T, na, nb *NIC, va, vb *VI, msg []byte) []byte {
	t.Helper()
	rbuf := make([]byte, len(msg)+16)
	rreg, err := nb.RegisterMemory(rbuf)
	if err != nil {
		t.Fatal(err)
	}
	rd := MustDescriptor(Segment{Region: rreg, Offset: 0, Len: len(rbuf)})
	if err := vb.PostRecv(rd); err != nil {
		t.Fatal(err)
	}

	sbuf := make([]byte, len(msg))
	copy(sbuf, msg)
	sreg, err := na.RegisterMemory(sbuf)
	if err != nil {
		t.Fatal(err)
	}
	sd := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: len(msg)})
	if err := va.PostSend(sd); err != nil {
		t.Fatal(err)
	}
	if err := sd.Wait(testTimeout); err != nil {
		t.Fatalf("send: %v", err)
	}
	c, err := vb.RecvWait(testTimeout)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if c.Desc != rd || c.Send {
		t.Fatalf("unexpected completion %+v", c)
	}
	if err := rd.Err(); err != nil {
		t.Fatalf("recv descriptor: %v", err)
	}
	got := make([]byte, rd.Transferred())
	if err := rreg.Read(got, 0); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSendReceiveRoundTrip(t *testing.T) {
	_, na, nb, va, vb := pair(t, ReliableDelivery)
	msg := []byte("user-level communication in cluster-based servers")
	got := sendRecv(t, na, nb, va, vb, msg)
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
}

func TestSendGatherScatter(t *testing.T) {
	_, na, nb, va, vb := pair(t, ReliableDelivery)

	// Gather from two segments; scatter into two segments.
	s1, _ := na.RegisterMemory([]byte("hello, "))
	s2, _ := na.RegisterMemory([]byte("world!"))
	sd := MustDescriptor(
		Segment{Region: s1, Offset: 0, Len: 7},
		Segment{Region: s2, Offset: 0, Len: 6},
	)

	rbuf := make([]byte, 16)
	rreg, _ := nb.RegisterMemory(rbuf)
	rd := MustDescriptor(
		Segment{Region: rreg, Offset: 0, Len: 4},
		Segment{Region: rreg, Offset: 7, Len: 9},
	)
	if err := vb.PostRecv(rd); err != nil {
		t.Fatal(err)
	}
	if err := va.PostSend(sd); err != nil {
		t.Fatal(err)
	}
	if err := sd.Wait(testTimeout); err != nil {
		t.Fatal(err)
	}
	if _, err := vb.RecvWait(testTimeout); err != nil {
		t.Fatal(err)
	}
	if rd.Transferred() != 13 {
		t.Fatalf("transferred %d", rd.Transferred())
	}
	got := make([]byte, 16)
	rreg.Read(got, 0)
	if string(got[0:4]) != "hell" || string(got[7:16]) != "o, world!" {
		t.Fatalf("scatter result %q", got)
	}
}

func TestInOrderDelivery(t *testing.T) {
	_, na, nb, va, vb := pair(t, ReliableDelivery)
	const n = 64
	rbufs := make([]*MemoryRegion, n)
	for i := range rbufs {
		r, _ := nb.RegisterMemory(make([]byte, 8))
		rbufs[i] = r
		if err := vb.PostRecv(MustDescriptor(Segment{Region: r, Offset: 0, Len: 8})); err != nil {
			// Queue depth is 16; throttle by draining later. Repost below.
			t.Fatal(err)
		}
		if i == 13 {
			break
		}
	}
	// Keep it simple: 14 posted receives, 14 sends, check payload order.
	for i := 0; i < 14; i++ {
		sbuf := []byte(fmt.Sprintf("msg%04d ", i))
		sreg, _ := na.RegisterMemory(sbuf)
		if err := va.PostSend(MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 8})); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 14; i++ {
		c, err := vb.RecvWait(testTimeout)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		c.Desc.segments[0].Region.Read(got, 0)
		want := fmt.Sprintf("msg%04d ", i)
		if string(got) != want {
			t.Fatalf("message %d out of order: %q", i, got)
		}
	}
}

func TestReliableNoRecvDescriptorBreaksConnection(t *testing.T) {
	_, na, _, va, vb := pair(t, ReliableDelivery)
	sreg, _ := na.RegisterMemory([]byte("data"))
	sd := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})
	if err := va.PostSend(sd); err != nil {
		t.Fatal(err)
	}
	if err := sd.Wait(testTimeout); !errors.Is(err, ErrNoRecvDescriptor) {
		t.Fatalf("send completed with %v, want ErrNoRecvDescriptor", err)
	}
	// Both ends are now broken.
	if err := va.PostSend(MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})); !errors.Is(err, ErrBroken) {
		t.Fatalf("post on broken VI: %v", err)
	}
	if vb.Err() == nil {
		t.Fatal("peer VI not marked broken")
	}
}

func TestUnreliableDropsSilently(t *testing.T) {
	_, na, nb, va, _ := pair(t, Unreliable)
	sreg, _ := na.RegisterMemory([]byte("data"))
	sd := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})
	if err := va.PostSend(sd); err != nil {
		t.Fatal(err)
	}
	// No receive descriptor posted: unreliable service drops, the send
	// still completes successfully.
	if err := sd.Wait(testTimeout); err != nil {
		t.Fatalf("unreliable send failed: %v", err)
	}
	deadline := time.Now().Add(testTimeout)
	for nb.Stats().Drops == 0 {
		if time.Now().After(deadline) {
			t.Fatal("drop not recorded")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUnreliableLossRate(t *testing.T) {
	f := NewFabric(WithLoss(0.5), WithSeed(42))
	defer f.Close()
	na, _ := f.CreateNIC("a")
	nb, _ := f.CreateNIC("b")
	ln, _ := nb.Listen("svc")
	vb, _ := nb.CreateVI(Unreliable, 128)
	va, _ := na.CreateVI(Unreliable, 128)
	go ln.Accept(vb)
	if err := va.Connect("b", "svc"); err != nil {
		t.Fatal(err)
	}
	const total = 200
	for i := 0; i < total; i++ {
		r, _ := nb.RegisterMemory(make([]byte, 4))
		vb.PostRecv(MustDescriptor(Segment{Region: r, Offset: 0, Len: 4}))
	}
	sreg, _ := na.RegisterMemory([]byte("ping"))
	for i := 0; i < total; i++ {
		d := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})
		if err := va.PostSend(d); err != nil {
			t.Fatal(err)
		}
		if err := d.Wait(testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	delivered := int(na.Stats().SendsComplete) - int(na.Stats().Drops)
	if drops := na.Stats().Drops; drops < total/5 || drops > total*4/5 {
		t.Errorf("drops = %d of %d, want roughly half", drops, total)
	}
	if delivered <= 0 {
		t.Error("nothing delivered")
	}
}

func TestRDMAWrite(t *testing.T) {
	_, na, nb, va, _ := pair(t, ReliableDelivery)

	remote := make([]byte, 64)
	rreg, _ := nb.RegisterMemory(remote)
	rreg.EnableRemoteWrite()

	local, _ := na.RegisterMemory([]byte("remote memory write!"))
	d := MustDescriptor(Segment{Region: local, Offset: 0, Len: 20})
	if err := va.PostRDMAWrite(d, rreg.Handle(), 8); err != nil {
		t.Fatal(err)
	}
	if err := d.Wait(testTimeout); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 20)
	rreg.Read(got, 8)
	if string(got) != "remote memory write!" {
		t.Fatalf("remote region = %q", got)
	}
	// No receive descriptor was consumed and no receive completed.
	if nb.Stats().RecvsComplete != 0 {
		t.Error("RDMA write consumed a receive")
	}
	if na.Stats().RDMAWrites != 1 {
		t.Errorf("rdma count = %d", na.Stats().RDMAWrites)
	}
}

func TestRDMAWriteProtection(t *testing.T) {
	_, na, nb, va, _ := pair(t, ReliableDelivery)
	local, _ := na.RegisterMemory([]byte("data"))

	// Not enabled for remote write.
	rreg, _ := nb.RegisterMemory(make([]byte, 16))
	d := MustDescriptor(Segment{Region: local, Offset: 0, Len: 4})
	if err := va.PostRDMAWrite(d, rreg.Handle(), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Wait(testTimeout); !errors.Is(err, ErrProtection) {
		t.Fatalf("write to protected region: %v", err)
	}
}

func TestRDMAWriteOutOfBounds(t *testing.T) {
	_, na, nb, va, _ := pair(t, ReliableDelivery)
	local, _ := na.RegisterMemory([]byte("0123456789"))
	rreg, _ := nb.RegisterMemory(make([]byte, 8))
	rreg.EnableRemoteWrite()
	d := MustDescriptor(Segment{Region: local, Offset: 0, Len: 10})
	if err := va.PostRDMAWrite(d, rreg.Handle(), 4); err != nil {
		t.Fatal(err)
	}
	if err := d.Wait(testTimeout); !errors.Is(err, ErrProtection) {
		t.Fatalf("out-of-bounds write: %v", err)
	}
}

func TestRDMAWriteUnknownHandle(t *testing.T) {
	_, na, _, va, _ := pair(t, ReliableDelivery)
	local, _ := na.RegisterMemory([]byte("data"))
	d := MustDescriptor(Segment{Region: local, Offset: 0, Len: 4})
	if err := va.PostRDMAWrite(d, Handle(9999), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Wait(testTimeout); !errors.Is(err, ErrProtection) {
		t.Fatalf("unknown handle: %v", err)
	}
}

func TestPollOnSequenceNumber(t *testing.T) {
	// The PRESS pattern: RDMA-write a payload then its sequence number;
	// the receiver polls the sequence word and then reads the payload.
	_, na, nb, va, _ := pair(t, ReliableDelivery)
	remote := make([]byte, 64)
	rreg, _ := nb.RegisterMemory(remote)
	rreg.EnableRemoteWrite()

	payload := []byte("file-name.html")
	buf := make([]byte, len(payload)+4)
	copy(buf, payload)
	buf[len(payload)] = 1 // sequence number 1, little-endian
	local, _ := na.RegisterMemory(buf)
	d := MustDescriptor(Segment{Region: local, Offset: 0, Len: len(buf)})
	if err := va.PostRDMAWrite(d, rreg.Handle(), 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(testTimeout)
	for {
		seq, err := rreg.Load32(len(payload))
		if err != nil {
			t.Fatal(err)
		}
		if seq == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sequence number never arrived")
		}
	}
	got := make([]byte, len(payload))
	rreg.Read(got, 0)
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q", got)
	}
}

func TestMessageLargerThanRecvDescriptor(t *testing.T) {
	_, na, nb, va, vb := pair(t, ReliableDelivery)
	rreg, _ := nb.RegisterMemory(make([]byte, 4))
	rd := MustDescriptor(Segment{Region: rreg, Offset: 0, Len: 4})
	vb.PostRecv(rd)

	sreg, _ := na.RegisterMemory([]byte("way too long"))
	sd := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 12})
	if err := va.PostSend(sd); err != nil {
		t.Fatal(err)
	}
	if err := sd.Wait(testTimeout); !errors.Is(err, ErrTooLong) {
		t.Fatalf("send: %v", err)
	}
	if err := rd.Err(); !errors.Is(err, ErrTooLong) {
		t.Fatalf("recv: %v", err)
	}
}

func TestCompletionQueueMultiplexes(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	hub, _ := f.CreateNIC("hub")
	cq, err := NewCompletionQueue(256)
	if err != nil {
		t.Fatal(err)
	}
	const peers = 4
	for i := 0; i < peers; i++ {
		addr := fmt.Sprintf("peer%d", i)
		peer, _ := f.CreateNIC(addr)
		ln, _ := hub.Listen("svc" + addr)
		hv, _ := hub.CreateVI(ReliableDelivery, 16)
		hv.SetRecvCQ(cq)
		rreg, _ := hub.RegisterMemory(make([]byte, 16))
		hv.PostRecv(MustDescriptor(Segment{Region: rreg, Offset: 0, Len: 16}))
		pv, _ := peer.CreateVI(ReliableDelivery, 16)
		go ln.Accept(hv)
		if err := pv.Connect("hub", "svc"+addr); err != nil {
			t.Fatal(err)
		}
		sreg, _ := peer.RegisterMemory([]byte(addr))
		if err := pv.PostSend(MustDescriptor(Segment{Region: sreg, Offset: 0, Len: len(addr)})); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint32]bool{}
	for i := 0; i < peers; i++ {
		c, err := cq.Wait(testTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if c.Send {
			t.Fatal("send completion on recv CQ")
		}
		seen[c.VI.ID()] = true
	}
	if len(seen) != peers {
		t.Fatalf("completions from %d VIs, want %d", len(seen), peers)
	}
	if _, ok := cq.Poll(); ok {
		t.Fatal("extra completion")
	}
}

func TestQueueDepthEnforced(t *testing.T) {
	_, na, nb, va, vb := pair(t, ReliableDelivery)
	rreg, _ := nb.RegisterMemory(make([]byte, 1024))
	for i := 0; i < 16; i++ {
		if err := vb.PostRecv(MustDescriptor(Segment{Region: rreg, Offset: i, Len: 1})); err != nil {
			t.Fatal(err)
		}
	}
	if err := vb.PostRecv(MustDescriptor(Segment{Region: rreg, Offset: 0, Len: 1})); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("17th recv: %v", err)
	}
	_ = na
	_ = va
}

func TestPostWithoutConnect(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	n, _ := f.CreateNIC("solo")
	v, _ := n.CreateVI(ReliableDelivery, 4)
	reg, _ := n.RegisterMemory(make([]byte, 4))
	err := v.PostSend(MustDescriptor(Segment{Region: reg, Offset: 0, Len: 4}))
	if !errors.Is(err, ErrNotConnected) {
		t.Fatalf("got %v", err)
	}
}

func TestConnectErrors(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	na, _ := f.CreateNIC("a")
	nb, _ := f.CreateNIC("b")
	v, _ := na.CreateVI(ReliableDelivery, 4)
	if err := v.Connect("nowhere", "svc"); !errors.Is(err, ErrUnknownAddress) {
		t.Fatalf("unknown address: %v", err)
	}
	if err := v.Connect("b", "svc"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("unknown service: %v", err)
	}
	_ = nb
}

func TestConnectReliabilityMismatchRejected(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	na, _ := f.CreateNIC("a")
	nb, _ := f.CreateNIC("b")
	ln, _ := nb.Listen("svc")
	vb, _ := nb.CreateVI(Unreliable, 4)
	va, _ := na.CreateVI(ReliableDelivery, 4)
	accepted := make(chan error, 1)
	go func() {
		_, err := ln.Accept(vb)
		accepted <- err
	}()
	if err := va.Connect("b", "svc"); !errors.Is(err, ErrRejected) {
		t.Fatalf("mismatch: %v", err)
	}
	if err := <-accepted; !errors.Is(err, ErrRejected) {
		t.Fatalf("accept: %v", err)
	}
}

func TestDoubleConnect(t *testing.T) {
	_, _, _, va, _ := pair(t, ReliableDelivery)
	if err := va.Connect("nodeB", "svc"); !errors.Is(err, ErrAlreadyConnected) {
		t.Fatalf("double connect: %v", err)
	}
}

func TestDeregisteredRegionFailsTransfers(t *testing.T) {
	_, na, _, va, _ := pair(t, ReliableDelivery)
	reg, _ := na.RegisterMemory(make([]byte, 8))
	if err := na.DeregisterMemory(reg); err != nil {
		t.Fatal(err)
	}
	d := MustDescriptor(Segment{Region: reg, Offset: 0, Len: 8})
	if err := va.PostSend(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Wait(testTimeout); !errors.Is(err, ErrRegionReleased) {
		t.Fatalf("send from released region: %v", err)
	}
	if err := na.DeregisterMemory(reg); !errors.Is(err, ErrRegionReleased) {
		t.Fatalf("double deregister: %v", err)
	}
}

func TestDescriptorReuse(t *testing.T) {
	_, na, nb, va, vb := pair(t, ReliableDelivery)
	sreg, _ := na.RegisterMemory([]byte("abcd"))
	rreg, _ := nb.RegisterMemory(make([]byte, 4))
	sd := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})
	for i := 0; i < 5; i++ {
		rd := MustDescriptor(Segment{Region: rreg, Offset: 0, Len: 4})
		if err := vb.PostRecv(rd); err != nil {
			t.Fatal(err)
		}
		if err := va.PostSend(sd); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if err := sd.Wait(testTimeout); err != nil {
			t.Fatal(err)
		}
		if _, err := vb.RecvWait(testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	if n := na.Stats().SendsComplete; n != 5 {
		t.Fatalf("sends = %d", n)
	}
}

func TestDoublePostRejected(t *testing.T) {
	_, na, _, va, _ := pair(t, ReliableDelivery)
	// Install a slow fabric? Not needed: post the same descriptor twice
	// quickly; the second post must fail if the first is still pending.
	reg, _ := na.RegisterMemory(make([]byte, 4))
	d := MustDescriptor(Segment{Region: reg, Offset: 0, Len: 4})
	if err := d.markPosted(); err != nil {
		t.Fatal(err)
	}
	if err := d.markPosted(); err == nil {
		t.Fatal("double post accepted")
	}
	d.complete(0, nil)
	_ = va
}

func TestCloseUnblocksWaiters(t *testing.T) {
	f := NewFabric()
	na, _ := f.CreateNIC("a")
	nb, _ := f.CreateNIC("b")
	ln, _ := nb.Listen("svc")
	vb, _ := nb.CreateVI(ReliableDelivery, 4)
	va, _ := na.CreateVI(ReliableDelivery, 4)
	go ln.Accept(vb)
	if err := va.Connect("b", "svc"); err != nil {
		t.Fatal(err)
	}
	rreg, _ := nb.RegisterMemory(make([]byte, 4))
	rd := MustDescriptor(Segment{Region: rreg, Offset: 0, Len: 4})
	vb.PostRecv(rd)

	done := make(chan error, 1)
	go func() {
		_, err := vb.RecvWait(testTimeout)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	f.Close()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrTimeout) {
			t.Fatalf("waiter got %v", err)
		}
	case <-time.After(testTimeout):
		t.Fatal("waiter stuck after Close")
	}
	if !errors.Is(rd.Err(), ErrClosed) {
		t.Fatalf("pending recv descriptor: %v", rd.Err())
	}
}

func TestFabricShapingDelaysDelivery(t *testing.T) {
	var slept struct {
		sync.Mutex
		total time.Duration
	}
	old := sleep
	sleep = func(d time.Duration) {
		slept.Lock()
		slept.total += d
		slept.Unlock()
	}
	defer func() { sleep = old }()

	f := NewFabric(WithLatency(time.Millisecond), WithBandwidth(1e6))
	defer f.Close()
	na, _ := f.CreateNIC("a")
	nb, _ := f.CreateNIC("b")
	ln, _ := nb.Listen("svc")
	vb, _ := nb.CreateVI(ReliableDelivery, 4)
	va, _ := na.CreateVI(ReliableDelivery, 4)
	go ln.Accept(vb)
	if err := va.Connect("b", "svc"); err != nil {
		t.Fatal(err)
	}
	rreg, _ := nb.RegisterMemory(make([]byte, 1000))
	vb.PostRecv(MustDescriptor(Segment{Region: rreg, Offset: 0, Len: 1000}))
	sreg, _ := na.RegisterMemory(make([]byte, 1000))
	d := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 1000})
	va.PostSend(d)
	if err := d.Wait(testTimeout); err != nil {
		t.Fatal(err)
	}
	slept.Lock()
	defer slept.Unlock()
	// 1 ms latency + 1000 bytes at 1 MB/s = 1 ms -> 2 ms total.
	if slept.total != 2*time.Millisecond {
		t.Fatalf("shaping slept %v, want 2ms", slept.total)
	}
}

func TestConcurrentBidirectionalTraffic(t *testing.T) {
	_, na, nb, va, vb := pair(t, ReliableDelivery)
	const msgs = 200
	var wg sync.WaitGroup
	run := func(sn, rn *NIC, sv, rv *VI, tag byte) {
		defer wg.Done()
		rreg, _ := rn.RegisterMemory(make([]byte, msgs))
		sreg, _ := sn.RegisterMemory(bytes.Repeat([]byte{tag}, msgs))
		for i := 0; i < msgs; i++ {
			rd := MustDescriptor(Segment{Region: rreg, Offset: i, Len: 1})
			if err := rv.PostRecv(rd); err != nil {
				t.Error(err)
				return
			}
			sd := MustDescriptor(Segment{Region: sreg, Offset: i, Len: 1})
			if err := sv.PostSend(sd); err != nil {
				t.Error(err)
				return
			}
			if err := sd.Wait(testTimeout); err != nil {
				t.Error(err)
				return
			}
			if _, err := rv.RecvWait(testTimeout); err != nil {
				t.Error(err)
				return
			}
		}
	}
	wg.Add(2)
	go run(na, nb, va, vb, 'A')
	go run(nb, na, vb, va, 'B')
	wg.Wait()
}

func TestStatsAccounting(t *testing.T) {
	_, na, nb, va, vb := pair(t, ReliableDelivery)
	msg := []byte("12345678")
	sendRecv(t, na, nb, va, vb, msg)
	sa, sb := na.Stats(), nb.Stats()
	if sa.SendsPosted != 1 || sa.SendsComplete != 1 {
		t.Errorf("sender stats %+v", sa)
	}
	if sa.BytesSent != int64(len(msg)) {
		t.Errorf("bytes sent %d", sa.BytesSent)
	}
	if sb.RecvsPosted != 1 || sb.RecvsComplete != 1 {
		t.Errorf("receiver stats %+v", sb)
	}
}

func TestFabricDuplicateAddress(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	if _, err := f.CreateNIC("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateNIC("x"); err == nil {
		t.Fatal("duplicate address accepted")
	}
	if _, err := f.CreateNIC(""); err == nil {
		t.Fatal("empty address accepted")
	}
}

func TestRegisterMemoryValidation(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	n, _ := f.CreateNIC("x")
	if _, err := n.RegisterMemory(nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
	other, _ := f.CreateNIC("y")
	reg, _ := n.RegisterMemory(make([]byte, 4))
	if err := other.DeregisterMemory(reg); err == nil {
		t.Fatal("cross-NIC deregister accepted")
	}
}

// Property: arbitrary payloads survive arbitrary gather/scatter segment
// splits bit-for-bit.
func TestGatherScatterIntegrityProperty(t *testing.T) {
	_, na, nb, va, vb := pair(t, ReliableDelivery)
	check := func(payload []byte, cut1, cut2 uint8) bool {
		if len(payload) == 0 {
			return true
		}
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		// Split the send into up to three segments at random cuts.
		a := int(cut1) % (len(payload) + 1)
		b := a + int(cut2)%(len(payload)-a+1)
		sbuf := make([]byte, len(payload))
		copy(sbuf, payload)
		sreg, err := na.RegisterMemory(sbuf)
		if err != nil {
			return false
		}
		segs := []Segment{}
		for _, r := range [][2]int{{0, a}, {a, b}, {b, len(payload)}} {
			if r[1] > r[0] {
				segs = append(segs, Segment{Region: sreg, Offset: r[0], Len: r[1] - r[0]})
			}
		}
		if len(segs) == 0 {
			return true
		}
		rbuf := make([]byte, len(payload))
		rreg, err := nb.RegisterMemory(rbuf)
		if err != nil {
			return false
		}
		rd := MustDescriptor(Segment{Region: rreg, Offset: 0, Len: len(payload)})
		if vb.PostRecv(rd) != nil {
			return false
		}
		sd := MustDescriptor(segs...)
		if va.PostSend(sd) != nil {
			return false
		}
		if sd.Wait(testTimeout) != nil {
			return false
		}
		if _, err := vb.RecvWait(testTimeout); err != nil {
			return false
		}
		got := make([]byte, len(payload))
		if rreg.Read(got, 0) != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
