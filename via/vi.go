package via

import (
	"fmt"
	"sync"
	"time"
)

func defaultSleep(d time.Duration) { time.Sleep(d) }

type viState int

const (
	viIdle viState = iota
	viConnected
	viBroken
	viClosed
)

// VI is a Virtual Interface: a connected, bidirectional point-to-point
// communication end-point with a send queue and a receive queue,
// analogous to a socket end-point in a TCP connection (Section 2.1).
type VI struct {
	nic         *NIC
	id          uint32
	reliability Reliability
	depth       int

	mu        sync.Mutex
	state     viState
	brokenErr error
	peerNIC   *NIC
	peerVIID  uint32
	// recvQ is a fixed ring of depth slots: posting a receive writes the
	// tail, the fabric pops the head. Sized once at creation so the
	// steady-state post/pop cycle never allocates.
	recvQ       []*Descriptor
	recvHead    int
	recvLen     int
	sendPending int
	sendCQ      *CompletionQueue
	recvCQ      *CompletionQueue
	sendDone    chan Completion
	recvDone    chan Completion
}

func newVI(n *NIC, id uint32, rel Reliability, depth int) *VI {
	return &VI{
		nic:         n,
		id:          id,
		reliability: rel,
		depth:       depth,
		recvQ:       make([]*Descriptor, depth),
		sendDone:    make(chan Completion, 4*depth),
		recvDone:    make(chan Completion, 4*depth),
	}
}

// ID returns the VI's identifier on its NIC.
func (v *VI) ID() uint32 { return v.id }

// Reliability returns the VI's service level.
func (v *VI) Reliability() Reliability { return v.reliability }

// NIC returns the owning network interface.
func (v *VI) NIC() *NIC { return v.nic }

// SetSendCQ routes send completions to a completion queue instead of
// the VI-local SendWait channel. Must be set before posting.
func (v *VI) SetSendCQ(cq *CompletionQueue) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.sendCQ = cq
}

// SetRecvCQ routes receive completions to a completion queue instead of
// the VI-local RecvWait channel. Must be set before posting.
func (v *VI) SetRecvCQ(cq *CompletionQueue) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.recvCQ = cq
}

// Connect dials a VI listening on the remote NIC's service and blocks
// until the connection is accepted or rejected.
func (v *VI) Connect(remoteAddr, service string) error {
	v.mu.Lock()
	if v.state == viClosed {
		v.mu.Unlock()
		return ErrClosed
	}
	if v.state != viIdle {
		v.mu.Unlock()
		return ErrAlreadyConnected
	}
	v.mu.Unlock()

	remote, err := v.nic.fabric.lookup(remoteAddr)
	if err != nil {
		return err
	}
	// Connection management rides the same wires as data: dialing across
	// a severed or isolated link fails, so reconnect probes cannot
	// succeed while the fault is still in force.
	if !v.nic.fabric.linkUp(v.nic.addr, remoteAddr) {
		return fmt.Errorf("%w: %s -> %s", ErrLinkDown, v.nic.addr, remoteAddr)
	}
	l, err := remote.listener(service)
	if err != nil {
		return err
	}
	req := &connReq{fromVI: v, reply: make(chan error, 1)}
	select {
	case l.ch <- req:
	case <-l.closed:
		return ErrClosed
	case <-v.nic.done:
		return ErrClosed
	}
	select {
	case err := <-req.reply:
		return err
	case <-v.nic.done:
		return ErrClosed
	}
}

// bind pairs two VIs; called by Listener.Accept with both sides known.
func bind(a, b *VI) error {
	if a.reliability != b.reliability {
		return fmt.Errorf("%w: reliability mismatch (%v vs %v)", ErrRejected, a.reliability, b.reliability)
	}
	// Lock in a global order to avoid deadlock with concurrent binds.
	first, second := a, b
	if first.nic.addr > second.nic.addr || (first.nic.addr == second.nic.addr && first.id > second.id) {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	//presslint:ignore lock-order both VIs are locked in the global (addr, id) order chosen above, so concurrent binds cannot deadlock
	second.mu.Lock()
	defer second.mu.Unlock()
	if a.state != viIdle || b.state != viIdle {
		return ErrAlreadyConnected
	}
	a.state, b.state = viConnected, viConnected
	a.peerNIC, a.peerVIID = b.nic, b.id
	b.peerNIC, b.peerVIID = a.nic, a.id
	return nil
}

func (v *VI) peerRef() (*NIC, uint32, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	switch v.state {
	case viConnected:
		return v.peerNIC, v.peerVIID, nil
	case viBroken:
		return nil, 0, fmt.Errorf("%w: %v", ErrBroken, v.brokenErr)
	case viClosed:
		return nil, 0, ErrClosed
	default:
		return nil, 0, ErrNotConnected
	}
}

// PostSend posts a send descriptor: the payload described by its
// segments is transferred to the peer VI's next receive descriptor.
//
//presslint:hotpath budget=0
func (v *VI) PostSend(d *Descriptor) error {
	return v.postOut(d, opSend)
}

// PostRDMAWrite posts a remote memory write: the payload is written
// directly into the peer NIC's registered region at the given offset,
// without involving the remote processor or consuming a receive
// descriptor. The remote region must have remote writes enabled.
//
//presslint:hotpath budget=0
func (v *VI) PostRDMAWrite(d *Descriptor, remote Handle, remoteOffset int) error {
	d.remoteHandle = remote
	d.remoteOffset = remoteOffset
	return v.postOut(d, opRDMA)
}

func (v *VI) postOut(d *Descriptor, op opcode) error {
	v.mu.Lock()
	switch v.state {
	case viClosed:
		v.mu.Unlock()
		return ErrClosed
	case viBroken:
		err := v.brokenErr
		v.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrBroken, err)
	case viIdle:
		v.mu.Unlock()
		return ErrNotConnected
	}
	if v.sendPending >= v.depth {
		v.mu.Unlock()
		return ErrQueueFull
	}
	if err := d.markPosted(); err != nil {
		v.mu.Unlock()
		return err
	}
	v.sendPending++
	v.mu.Unlock()

	if err := v.nic.post(workItem{vi: v, desc: d, op: op}); err != nil {
		v.mu.Lock()
		v.sendPending--
		v.mu.Unlock()
		d.complete(0, err)
		return err
	}
	v.nic.m.sendsPosted.Inc()
	return nil
}

// PostRecv posts a receive descriptor; incoming sends consume posted
// descriptors in FIFO order.
//
//presslint:hotpath budget=0
func (v *VI) PostRecv(d *Descriptor) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.state == viClosed {
		return ErrClosed
	}
	if v.recvLen >= v.depth {
		return ErrQueueFull
	}
	if err := d.markPosted(); err != nil {
		return err
	}
	v.recvQ[(v.recvHead+v.recvLen)%len(v.recvQ)] = d
	v.recvLen++
	v.nic.m.recvsPosted.Inc()
	return nil
}

func (v *VI) popRecv() *Descriptor {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.recvLen == 0 {
		return nil
	}
	d := v.recvQ[v.recvHead]
	v.recvQ[v.recvHead] = nil
	v.recvHead = (v.recvHead + 1) % len(v.recvQ)
	v.recvLen--
	return d
}

// drainRecvLocked empties the receive ring, returning the pending
// descriptors in post order; callers hold v.mu and complete them after
// unlocking (teardown paths).
func (v *VI) drainRecvLocked() []*Descriptor {
	if v.recvLen == 0 {
		return nil
	}
	out := make([]*Descriptor, 0, v.recvLen)
	for v.recvLen > 0 {
		out = append(out, v.recvQ[v.recvHead])
		v.recvQ[v.recvHead] = nil
		v.recvHead = (v.recvHead + 1) % len(v.recvQ)
		v.recvLen--
	}
	return out
}

// Completion reports one finished descriptor.
type Completion struct {
	VI   *VI
	Desc *Descriptor
	// Send is true for send/RDMA completions, false for receives.
	Send bool
}

func (v *VI) sendCompleted(d *Descriptor, err error) {
	v.mu.Lock()
	v.sendPending--
	cq := v.sendCQ
	v.mu.Unlock()
	c := Completion{VI: v, Desc: d, Send: true}
	if cq != nil {
		cq.push(c)
		return
	}
	// Best-effort notification: the descriptor's own status is the
	// authoritative completion record (Descriptor.Wait/Status), so an
	// undrained notification channel must not stall the NIC engine.
	select {
	case v.sendDone <- c:
	default:
	}
}

func (v *VI) recvCompleted(d *Descriptor, err error) {
	v.mu.Lock()
	cq := v.recvCQ
	v.mu.Unlock()
	c := Completion{VI: v, Desc: d, Send: false}
	if cq != nil {
		cq.push(c)
		return
	}
	select {
	case v.recvDone <- c:
	default:
	}
}

// SendWait waits for the next send completion on a VI without a send
// CQ. timeout <= 0 waits forever. Notifications are best-effort with a
// 4x queue-depth buffer: a caller that lets them accumulate must fall
// back to Descriptor.Wait, which never loses a completion.
func (v *VI) SendWait(timeout time.Duration) (Completion, error) {
	return waitCompletion(v.sendDone, timeout)
}

// RecvWait waits for the next receive completion on a VI without a
// receive CQ. timeout <= 0 waits forever. The same best-effort
// buffering as SendWait applies.
func (v *VI) RecvWait(timeout time.Duration) (Completion, error) {
	return waitCompletion(v.recvDone, timeout)
}

func waitCompletion(ch chan Completion, timeout time.Duration) (Completion, error) {
	if timeout <= 0 {
		c, ok := <-ch
		if !ok {
			return Completion{}, ErrClosed
		}
		return c, nil
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case c, ok := <-ch:
		if !ok {
			return Completion{}, ErrClosed
		}
		return c, nil
	case <-t.C:
		return Completion{}, ErrTimeout
	}
}

// breakConn moves the VI (and its peer) to the error state: reliable
// connections report errors rather than masking them (Section 2.1).
func (v *VI) breakConn(err error) {
	v.mu.Lock()
	if v.state != viConnected {
		v.mu.Unlock()
		return
	}
	v.state = viBroken
	v.brokenErr = err
	peer := v.peerNIC
	peerID := v.peerVIID
	pending := v.drainRecvLocked()
	v.mu.Unlock()
	for _, d := range pending {
		d.complete(0, err)
		v.recvCompleted(d, err)
	}
	if peer != nil {
		if pv, ok := peer.vi(peerID); ok {
			pv.breakConn(err)
		}
	}
	// A break on a proxy VI must reach the real peer process; the hook
	// fires only on the viConnected -> viBroken transition above, so a
	// break echoed back over the wire terminates here.
	if v.nic.fw != nil {
		v.nic.fw.viBroken(v.id, err)
	}
}

// Err returns the error that broke the connection, if any.
func (v *VI) Err() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.brokenErr
}

// Peer returns the connected peer's fabric address and VI id, or
// ok == false when the VI is not (or no longer) connected.
func (v *VI) Peer() (addr string, id uint32, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.state != viConnected || v.peerNIC == nil {
		return "", 0, false
	}
	return v.peerNIC.addr, v.peerVIID, true
}

// Close disconnects the VI; pending receive descriptors complete with
// ErrClosed.
func (v *VI) Close() {
	v.mu.Lock()
	if v.state == viClosed {
		v.mu.Unlock()
		return
	}
	wasConnected := v.state == viConnected
	v.state = viClosed
	peer := v.peerNIC
	peerID := v.peerVIID
	pending := v.drainRecvLocked()
	v.mu.Unlock()
	for _, d := range pending {
		d.complete(0, ErrClosed)
		v.recvCompleted(d, ErrClosed)
	}
	if wasConnected && peer != nil {
		if pv, ok := peer.vi(peerID); ok {
			pv.breakConn(ErrClosed)
		}
	}
	v.nic.mu.Lock()
	delete(v.nic.vis, v.id)
	v.nic.mu.Unlock()
}
