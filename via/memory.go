package via

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Handle names a registered memory region; applications exchange
// handles (over regular messages) to grant remote-write access, as real
// VIA applications exchange memory handles at setup time.
type Handle uint32

// MemoryRegion is a registered buffer. Registration mirrors VIA's
// requirement that all transfer memory be registered (locked in
// physical memory) so the NIC can DMA directly into user buffers.
//
// A region may be written concurrently by the NIC (remote memory
// writes, receive DMA) while the owner polls it, so all accesses go
// through the locked accessors; Load32/Store32 give the acquire/release
// pairing that makes the paper's poll-on-sequence-number pattern sound.
type MemoryRegion struct {
	nic    *NIC
	handle Handle

	mu sync.Mutex
	// buf is nil once deregistered.
	buf []byte
	// remoteWrite permits RDMA writes into this region.
	remoteWrite bool
}

// Handle returns the region's handle.
func (r *MemoryRegion) Handle() Handle { return r.handle }

// Size returns the region length in bytes (0 once deregistered).
func (r *MemoryRegion) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// EnableRemoteWrite permits remote memory writes into the region.
func (r *MemoryRegion) EnableRemoteWrite() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.remoteWrite = true
}

// Read copies region bytes [off, off+len(dst)) into dst.
func (r *MemoryRegion) Read(dst []byte, off int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buf == nil {
		return ErrRegionReleased
	}
	if off < 0 || off+len(dst) > len(r.buf) {
		return fmt.Errorf("%w: read [%d,%d) of %d", ErrProtection, off, off+len(dst), len(r.buf))
	}
	copy(dst, r.buf[off:])
	return nil
}

// Write copies src into the region at off. It is a local write by the
// owning process (e.g. staging data before a send).
func (r *MemoryRegion) Write(src []byte, off int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buf == nil {
		return ErrRegionReleased
	}
	if off < 0 || off+len(src) > len(r.buf) {
		return fmt.Errorf("%w: write [%d,%d) of %d", ErrProtection, off, off+len(src), len(r.buf))
	}
	copy(r.buf[off:], src)
	return nil
}

// Load32 reads a little-endian uint32 at off; receivers use it to poll
// sequence numbers written by remote memory writes.
func (r *MemoryRegion) Load32(off int) (uint32, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buf == nil {
		return 0, ErrRegionReleased
	}
	if off < 0 || off+4 > len(r.buf) {
		return 0, fmt.Errorf("%w: load32 at %d of %d", ErrProtection, off, len(r.buf))
	}
	return binary.LittleEndian.Uint32(r.buf[off:]), nil
}

// Store32 writes a little-endian uint32 at off.
func (r *MemoryRegion) Store32(off int, v uint32) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buf == nil {
		return ErrRegionReleased
	}
	if off < 0 || off+4 > len(r.buf) {
		return fmt.Errorf("%w: store32 at %d of %d", ErrProtection, off, len(r.buf))
	}
	binary.LittleEndian.PutUint32(r.buf[off:], v)
	return nil
}

// Load64 reads a little-endian uint64 at off.
func (r *MemoryRegion) Load64(off int) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buf == nil {
		return 0, ErrRegionReleased
	}
	if off < 0 || off+8 > len(r.buf) {
		return 0, fmt.Errorf("%w: load64 at %d of %d", ErrProtection, off, len(r.buf))
	}
	return binary.LittleEndian.Uint64(r.buf[off:]), nil
}

// Store64 writes a little-endian uint64 at off.
func (r *MemoryRegion) Store64(off int, v uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buf == nil {
		return ErrRegionReleased
	}
	if off < 0 || off+8 > len(r.buf) {
		return fmt.Errorf("%w: store64 at %d of %d", ErrProtection, off, len(r.buf))
	}
	binary.LittleEndian.PutUint64(r.buf[off:], v)
	return nil
}

// rdmaWrite is the fabric-side entry: copy src into the region if the
// protection checks pass.
func (r *MemoryRegion) rdmaWrite(src []byte, off int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buf == nil {
		return ErrRegionReleased
	}
	if !r.remoteWrite {
		return fmt.Errorf("%w: region %d not enabled for remote write", ErrProtection, r.handle)
	}
	if off < 0 || off+len(src) > len(r.buf) {
		return fmt.Errorf("%w: remote write [%d,%d) of %d", ErrProtection, off, off+len(src), len(r.buf))
	}
	copy(r.buf[off:], src)
	return nil
}

// copyIn copies src into the region at off without the remote-write
// check (receive DMA into a posted descriptor's buffer).
func (r *MemoryRegion) copyIn(src []byte, off, limit int) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buf == nil {
		return 0, ErrRegionReleased
	}
	if off < 0 || off+limit > len(r.buf) {
		return 0, fmt.Errorf("%w: recv [%d,%d) of %d", ErrProtection, off, off+limit, len(r.buf))
	}
	n := copy(r.buf[off:off+limit], src)
	return n, nil
}

func (r *MemoryRegion) released() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf == nil
}
