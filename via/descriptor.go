package via

import (
	"fmt"
	"sync"
	"time"
)

// Segment is one piece of a descriptor's gather/scatter list: a range
// of a registered memory region.
type Segment struct {
	Region *MemoryRegion
	Offset int
	Len    int
}

func (s Segment) validate() error {
	if s.Region == nil {
		return fmt.Errorf("via: segment with nil region")
	}
	if s.Len < 0 || s.Offset < 0 {
		return fmt.Errorf("via: segment with negative offset/length")
	}
	return nil
}

// DescStatus is a descriptor's lifecycle state.
type DescStatus int

const (
	// DescIdle: not posted.
	DescIdle DescStatus = iota
	// DescPosted: on a work queue, being processed asynchronously.
	DescPosted
	// DescDone: completed successfully.
	DescDone
	// DescError: completed with an error (see Descriptor.Err).
	DescError
)

// Descriptor describes one transfer request: a gather/scatter list over
// registered memory plus, for remote memory writes, the remote target.
// The network interface processes posted descriptors asynchronously and
// marks them complete; descriptors are then reused for subsequent
// requests (Section 2.1).
type Descriptor struct {
	segments []Segment

	// remote memory write target (op == opRDMA).
	remoteHandle Handle
	remoteOffset int

	mu     sync.Mutex
	status DescStatus
	xfer   int
	err    error
	// done is allocated lazily by the first Wait on an in-flight
	// descriptor and closed (then cleared) by complete. Pollers that
	// never block — the steady-state send path checks Status/Err — pay
	// no channel allocation per reuse cycle.
	done chan struct{}
}

// NewDescriptor builds a descriptor over the given segments.
func NewDescriptor(segments ...Segment) (*Descriptor, error) {
	for _, s := range segments {
		if err := s.validate(); err != nil {
			return nil, err
		}
	}
	return &Descriptor{segments: segments}, nil
}

// MustDescriptor is NewDescriptor for segments known to be valid.
func MustDescriptor(segments ...Segment) *Descriptor {
	d, err := NewDescriptor(segments...)
	if err != nil {
		panic(err)
	}
	return d
}

// Len returns the total gather/scatter length.
func (d *Descriptor) Len() int {
	n := 0
	for _, s := range d.segments {
		n += s.Len
	}
	return n
}

// Status returns the descriptor's current state.
func (d *Descriptor) Status() DescStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.status
}

// Err returns the completion error, if any.
func (d *Descriptor) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// Transferred returns the number of payload bytes moved.
func (d *Descriptor) Transferred() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.xfer
}

// Wait blocks until the descriptor completes or the timeout elapses
// (timeout <= 0 waits forever). It returns the completion error.
func (d *Descriptor) Wait(timeout time.Duration) error {
	d.mu.Lock()
	if d.status == DescDone || d.status == DescError {
		err := d.err
		d.mu.Unlock()
		return err
	}
	if d.done == nil {
		d.done = make(chan struct{})
	}
	ch := d.done
	d.mu.Unlock()
	if timeout <= 0 {
		<-ch
		return d.Err()
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-ch:
		return d.Err()
	case <-t.C:
		return ErrTimeout
	}
}

// Reset returns a completed descriptor to the idle state so it can be
// posted again. Resetting a posted descriptor panics: the NIC still
// owns it.
func (d *Descriptor) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.status == DescPosted {
		panic("via: Reset of a posted descriptor")
	}
	d.status = DescIdle
	d.err = nil
	d.xfer = 0
}

// markPosted transitions to DescPosted; the caller must be the owning
// queue. Reports an error if the descriptor is already in flight.
func (d *Descriptor) markPosted() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.status == DescPosted {
		return fmt.Errorf("via: descriptor already posted")
	}
	if d.status != DescIdle {
		// Auto-reset completed descriptors on repost for convenience
		// (complete already cleared the done channel).
		d.err = nil
		d.xfer = 0
	}
	d.status = DescPosted
	return nil
}

func (d *Descriptor) complete(n int, err error) {
	d.mu.Lock()
	if d.status != DescPosted {
		d.mu.Unlock()
		panic("via: completion of unposted descriptor")
	}
	d.xfer = n
	d.err = err
	if err != nil {
		d.status = DescError
	} else {
		d.status = DescDone
	}
	done := d.done
	d.done = nil
	d.mu.Unlock()
	if done != nil {
		close(done)
	}
}

// gather serializes the descriptor's segments ("DMA out" of sender
// memory onto the wire) into one buffer, copying each segment directly
// into its slice of the result.
func (d *Descriptor) gather() ([]byte, error) {
	out := make([]byte, d.Len())
	n := 0
	for _, s := range d.segments {
		if err := s.Region.Read(out[n:n+s.Len], s.Offset); err != nil {
			return nil, err
		}
		n += s.Len
	}
	return out, nil
}

// scatter distributes payload into the descriptor's segments ("DMA in"
// to receiver memory); payload must fit.
func (d *Descriptor) scatter(payload []byte) (int, error) {
	if len(payload) > d.Len() {
		return 0, ErrTooLong
	}
	written := 0
	rest := payload
	for _, s := range d.segments {
		if len(rest) == 0 {
			break
		}
		n := s.Len
		if n > len(rest) {
			n = len(rest)
		}
		if _, err := s.Region.copyIn(rest[:n], s.Offset, n); err != nil {
			return written, err
		}
		written += n
		rest = rest[n:]
	}
	return written, nil
}
