package via

import (
	"fmt"
	"time"
)

// Fault injection: the fabric can sever the link between two NICs, the
// software analogue of pulling a cLAN cable. Transfers over a severed
// link fail — detected and reported on reliable-delivery VIs (breaking
// the connection, per the VIA error model), silently lost on
// unreliable ones. It can also slow a node without severing anything —
// the gray-failure mode (overcommitted host, failing disk, congested
// uplink) that health checks built on dead-or-alive evidence cannot
// see.

type linkKey struct{ a, b string }

func normLink(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// Partition severs the bidirectional link between two NIC addresses.
// It is idempotent; unknown addresses are accepted (the link simply
// stays severed if such a NIC appears later).
func (f *Fabric) Partition(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.severed == nil {
		f.severed = make(map[linkKey]struct{})
	}
	f.severed[normLink(a, b)] = struct{}{}
}

// Heal restores the link between two NIC addresses. It does not lift a
// node-level Isolate: a link is up only when it is neither pairwise
// severed nor touching an isolated NIC.
func (f *Fabric) Heal(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.severed, normLink(a, b))
}

// Isolate severs every link of one NIC address at once — the software
// analogue of pulling the node's cable rather than cutting individual
// pairs. It is idempotent and accepts unknown addresses, and it
// composes with Partition: node-level chaos does not need to enumerate
// O(n) pairs.
func (f *Fabric) Isolate(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.isolated == nil {
		f.isolated = make(map[string]struct{})
	}
	f.isolated[addr] = struct{}{}
}

// HealNode lifts a node-level Isolate. Pairwise Partition cuts touching
// the address, if any, remain in force until healed individually.
func (f *Fabric) HealNode(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.isolated, addr)
}

// SlowNode adds extra one-way delay to every transfer touching the
// given NIC address — a slow-but-alive node: its links stay up, its
// messages all arrive, they just take longer. Idempotent (the latest
// delay wins); unknown addresses are accepted. extra <= 0 is HealSlowNode.
func (f *Fabric) SlowNode(addr string, extra time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if extra <= 0 {
		delete(f.slowed, addr)
		return
	}
	if f.slowed == nil {
		f.slowed = make(map[string]time.Duration)
	}
	f.slowed[addr] = extra
}

// HealSlowNode restores the node's normal speed.
func (f *Fabric) HealSlowNode(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.slowed, addr)
}

// slowDelay returns the extra delay for a transfer between the two
// addresses: the larger of their SlowNode penalties (delays do not
// stack — the slowest party on the path sets the pace).
func (f *Fabric) slowDelay(a, b string) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	da, db := f.slowed[a], f.slowed[b]
	if db > da {
		return db
	}
	return da
}

// linkUp reports whether the two addresses can currently communicate.
func (f *Fabric) linkUp(a, b string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, cut := f.isolated[a]; cut {
		return false
	}
	if _, cut := f.isolated[b]; cut {
		return false
	}
	_, cut := f.severed[normLink(a, b)]
	return !cut
}

// ErrLinkDown is reported on transfers over a severed link.
var ErrLinkDown = fmt.Errorf("via: link down")
