package via

import (
	"fmt"
	"sync"
)

// connReq is a pending connection request delivered to a Listener.
type connReq struct {
	fromVI *VI
	reply  chan error
}

// Listener accepts VI connections on a named service, the connection
// brokering the operating system performs at VIA setup time (the only
// part of communication where it is involved).
type Listener struct {
	nic     *NIC
	service string
	ch      chan *connReq
	closed  chan struct{}

	mu   sync.Mutex
	done bool
}

// Listen registers a service name on the NIC.
func (n *NIC) Listen(service string) (*Listener, error) {
	if service == "" {
		return nil, fmt.Errorf("via: empty service name")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.listeners[service]; dup {
		return nil, fmt.Errorf("via: service %q already listening on %s", service, n.addr)
	}
	l := &Listener{
		nic:     n,
		service: service,
		ch:      make(chan *connReq, 16),
		closed:  make(chan struct{}),
	}
	n.listeners[service] = l
	return l, nil
}

func (n *NIC) listener(service string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	l, ok := n.listeners[service]
	if !ok {
		return nil, fmt.Errorf("%w: %q on %s", ErrUnknownService, service, n.addr)
	}
	return l, nil
}

// Accept blocks for the next connection request and binds it to the
// given local VI, returning the dialing NIC's address. The local VI
// must be idle and match the dialer's reliability level.
func (l *Listener) Accept(vi *VI) (remoteAddr string, err error) {
	select {
	case req := <-l.ch:
		if err := bind(req.fromVI, vi); err != nil {
			req.reply <- err
			return "", err
		}
		req.reply <- nil
		return req.fromVI.nic.addr, nil
	case <-l.closed:
		return "", ErrClosed
	}
}

// Close stops the listener; blocked Accept and Connect calls fail with
// ErrClosed.
func (l *Listener) Close() {
	l.mu.Lock()
	if l.done {
		l.mu.Unlock()
		return
	}
	l.done = true
	close(l.closed)
	l.mu.Unlock()
	// Past this point l.mu is released: the NIC lock and the dialer
	// replies below must not nest under it (found by presslint's
	// mutex-across-block when the replies still ran under l.mu).
	l.nic.mu.Lock()
	delete(l.nic.listeners, l.service)
	l.nic.mu.Unlock()
	// Reject queued dialers. Each reply channel is 1-buffered and
	// written exactly once, so the sends cannot block.
	for {
		select {
		case req := <-l.ch:
			req.reply <- ErrClosed
		default:
			return
		}
	}
}
