package via

import (
	"fmt"
	"sync"
	"time"
)

// CompletionQueue combines the completion notifications of multiple
// work queues into a single queue (Section 2.1), so one thread can wait
// for activity on many VIs — PRESS's receive thread does exactly this.
//
// Size the queue for the sum of the attached work-queue depths: a CQ
// that is never drained eventually stalls the NIC engine, the software
// analogue of a CQ overrun error in the VIA specification.
type CompletionQueue struct {
	ch   chan Completion
	done chan struct{}

	mu     sync.Mutex
	closed bool
}

// NewCompletionQueue creates a CQ holding up to depth undelivered
// completions.
func NewCompletionQueue(depth int) (*CompletionQueue, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("via: CQ depth must be positive, got %d", depth)
	}
	return &CompletionQueue{
		ch:   make(chan Completion, depth),
		done: make(chan struct{}),
	}, nil
}

// push delivers a completion, or drops it if the CQ has been closed;
// the descriptor itself still carries its status either way.
func (cq *CompletionQueue) push(c Completion) {
	select {
	case cq.ch <- c:
	case <-cq.done:
	}
}

// Wait blocks for the next completion. timeout <= 0 waits forever. It
// returns ErrClosed once the CQ is closed and ErrTimeout on expiry.
func (cq *CompletionQueue) Wait(timeout time.Duration) (Completion, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case c := <-cq.ch:
		return c, nil
	case <-cq.done:
		// Drain whatever was queued before the close.
		select {
		case c := <-cq.ch:
			return c, nil
		default:
			return Completion{}, ErrClosed
		}
	case <-timer:
		return Completion{}, ErrTimeout
	}
}

// Poll returns a completion if one is immediately available.
func (cq *CompletionQueue) Poll() (Completion, bool) {
	select {
	case c := <-cq.ch:
		return c, true
	default:
		return Completion{}, false
	}
}

// Close releases waiters with ErrClosed (after any already-queued
// completions drain). Completions arriving afterwards are dropped from
// the CQ but still carry their own descriptor status.
func (cq *CompletionQueue) Close() {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if cq.closed {
		return
	}
	cq.closed = true
	close(cq.done)
}
