package via

import (
	"errors"
	"testing"
	"time"
)

func TestPartitionBreaksReliableConnection(t *testing.T) {
	f, na, nb, va, vb := pair(t, ReliableDelivery)
	// Healthy transfer first.
	msg := sendRecv(t, na, nb, va, vb, []byte("before"))
	if string(msg) != "before" {
		t.Fatal("pre-partition transfer failed")
	}

	f.Partition("nodeA", "nodeB")
	sreg, _ := na.RegisterMemory([]byte("lost"))
	d := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})
	if err := va.PostSend(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Wait(testTimeout); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("send over severed link: %v", err)
	}
	// The connection is broken; healing the link does not resurrect it
	// (the application must reconnect), matching the VIA error model.
	f.Heal("nodeA", "nodeB")
	d2 := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})
	if err := va.PostSend(d2); !errors.Is(err, ErrBroken) {
		t.Fatalf("post after break: %v", err)
	}
	if vb.Err() == nil {
		t.Fatal("peer not marked broken")
	}
}

func TestPartitionSilentOnUnreliable(t *testing.T) {
	f, na, nb, va, _ := pair(t, Unreliable)
	f.Partition("nodeA", "nodeB")
	sreg, _ := na.RegisterMemory([]byte("lost"))
	d := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})
	if err := va.PostSend(d); err != nil {
		t.Fatal(err)
	}
	// Unreliable delivery: the loss is undetected.
	if err := d.Wait(testTimeout); err != nil {
		t.Fatalf("unreliable send over severed link reported %v", err)
	}
	deadline := time.Now().Add(testTimeout)
	for na.Stats().Drops == 0 {
		if time.Now().After(deadline) {
			t.Fatal("drop not recorded")
		}
		time.Sleep(time.Millisecond)
	}
	_ = nb
}

func TestPartitionFailsRDMAWrite(t *testing.T) {
	f, na, nb, va, _ := pair(t, ReliableDelivery)

	// Remote-writable region on nodeB, the target of the RDMA writes.
	rbuf := make([]byte, 64)
	rreg, err := nb.RegisterMemory(rbuf)
	if err != nil {
		t.Fatal(err)
	}
	rreg.EnableRemoteWrite()

	sreg, err := na.RegisterMemory([]byte("rdma-payload"))
	if err != nil {
		t.Fatal(err)
	}

	// Healthy remote write first.
	d := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 12})
	if err := va.PostRDMAWrite(d, rreg.Handle(), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Wait(testTimeout); err != nil {
		t.Fatalf("pre-partition RDMA write: %v", err)
	}
	got := make([]byte, 12)
	if err := rreg.Read(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "rdma-payload" {
		t.Fatalf("remote memory = %q", got)
	}

	// Over a severed link the write must fail with a checked error on
	// the completion path — never a panic, never silent success.
	f.Partition("nodeA", "nodeB")
	d2 := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 12})
	if err := va.PostRDMAWrite(d2, rreg.Handle(), 0); err != nil {
		t.Fatalf("post itself should succeed, completion carries the fault: %v", err)
	}
	if err := d2.Wait(testTimeout); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("RDMA write over severed link: %v, want ErrLinkDown", err)
	}
	// The reliable connection is now broken; further posts report it.
	d3 := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 12})
	if err := va.PostRDMAWrite(d3, rreg.Handle(), 0); !errors.Is(err, ErrBroken) {
		t.Fatalf("RDMA write after break: %v, want ErrBroken", err)
	}
}

func TestPartitionCompletesPendingRecvWithError(t *testing.T) {
	f, na, nb, va, vb := pair(t, ReliableDelivery)

	// Park a receive descriptor on nodeB before the link is cut.
	rreg, err := nb.RegisterMemory(make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	rd := MustDescriptor(Segment{Region: rreg, Offset: 0, Len: 32})
	if err := vb.PostRecv(rd); err != nil {
		t.Fatal(err)
	}

	// Cut the link and trip the failure from the sender side.
	f.Partition("nodeA", "nodeB")
	sreg, err := na.RegisterMemory([]byte("drop"))
	if err != nil {
		t.Fatal(err)
	}
	sd := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})
	if err := va.PostSend(sd); err != nil {
		t.Fatal(err)
	}
	if err := sd.Wait(testTimeout); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("send over severed link: %v, want ErrLinkDown", err)
	}

	// The break propagates: the parked descriptor completes with a
	// checked error through the normal completion path.
	c, err := vb.RecvWait(testTimeout)
	if err != nil {
		t.Fatalf("RecvWait after break: %v", err)
	}
	if c.Desc != rd {
		t.Fatalf("unexpected completion %+v", c)
	}
	if err := rd.Err(); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("parked recv descriptor error = %v, want ErrLinkDown", err)
	}
	if rd.Status() != DescError {
		t.Fatalf("parked recv descriptor status = %v, want DescError", rd.Status())
	}
}

func TestHealRestoresNewConnections(t *testing.T) {
	f, na, nb, _, _ := pair(t, ReliableDelivery)
	f.Partition("nodeA", "nodeB")
	f.Heal("nodeA", "nodeB")

	// A fresh VI pair over the healed link works.
	ln, err := nb.Listen("svc2")
	if err != nil {
		t.Fatal(err)
	}
	vb2, _ := nb.CreateVI(ReliableDelivery, 8)
	va2, _ := na.CreateVI(ReliableDelivery, 8)
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept(vb2)
		done <- err
	}()
	if err := va2.Connect("nodeB", "svc2"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got := sendRecv(t, na, nb, va2, vb2, []byte("healed"))
	if string(got) != "healed" {
		t.Fatal("transfer over healed link failed")
	}
}

func TestVIPeer(t *testing.T) {
	_, _, _, va, vb := pair(t, ReliableDelivery)
	addr, id, ok := va.Peer()
	if !ok || addr != "nodeB" || id != vb.ID() {
		t.Fatalf("peer = %q/%d/%v", addr, id, ok)
	}
	va.Close()
	if _, _, ok := va.Peer(); ok {
		t.Fatal("closed VI still reports a peer")
	}
}

func TestNICAttributes(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	n, _ := f.CreateNIC("x")
	a := n.Attributes()
	if !a.RDMAWrite {
		t.Error("RDMA write unsupported")
	}
	if a.RDMARead {
		t.Error("RDMA read must be unsupported (Giganet parity)")
	}
	for _, r := range a.ReliabilitySupport {
		if r != Unreliable && r != ReliableDelivery {
			t.Errorf("unexpected reliability %v", r)
		}
	}
	if len(a.ReliabilitySupport) != 2 {
		t.Errorf("reliability levels = %d", len(a.ReliabilitySupport))
	}
}
