package via

import (
	"errors"
	"testing"
	"time"
)

func TestPartitionBreaksReliableConnection(t *testing.T) {
	f, na, nb, va, vb := pair(t, ReliableDelivery)
	// Healthy transfer first.
	msg := sendRecv(t, na, nb, va, vb, []byte("before"))
	if string(msg) != "before" {
		t.Fatal("pre-partition transfer failed")
	}

	f.Partition("nodeA", "nodeB")
	sreg, _ := na.RegisterMemory([]byte("lost"))
	d := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})
	if err := va.PostSend(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Wait(testTimeout); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("send over severed link: %v", err)
	}
	// The connection is broken; healing the link does not resurrect it
	// (the application must reconnect), matching the VIA error model.
	f.Heal("nodeA", "nodeB")
	d2 := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})
	if err := va.PostSend(d2); !errors.Is(err, ErrBroken) {
		t.Fatalf("post after break: %v", err)
	}
	if vb.Err() == nil {
		t.Fatal("peer not marked broken")
	}
}

func TestPartitionSilentOnUnreliable(t *testing.T) {
	f, na, nb, va, _ := pair(t, Unreliable)
	f.Partition("nodeA", "nodeB")
	sreg, _ := na.RegisterMemory([]byte("lost"))
	d := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})
	if err := va.PostSend(d); err != nil {
		t.Fatal(err)
	}
	// Unreliable delivery: the loss is undetected.
	if err := d.Wait(testTimeout); err != nil {
		t.Fatalf("unreliable send over severed link reported %v", err)
	}
	deadline := time.Now().Add(testTimeout)
	for na.Stats().Drops == 0 {
		if time.Now().After(deadline) {
			t.Fatal("drop not recorded")
		}
		time.Sleep(time.Millisecond)
	}
	_ = nb
}

func TestPartitionFailsRDMAWrite(t *testing.T) {
	f, na, nb, va, _ := pair(t, ReliableDelivery)

	// Remote-writable region on nodeB, the target of the RDMA writes.
	rbuf := make([]byte, 64)
	rreg, err := nb.RegisterMemory(rbuf)
	if err != nil {
		t.Fatal(err)
	}
	rreg.EnableRemoteWrite()

	sreg, err := na.RegisterMemory([]byte("rdma-payload"))
	if err != nil {
		t.Fatal(err)
	}

	// Healthy remote write first.
	d := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 12})
	if err := va.PostRDMAWrite(d, rreg.Handle(), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Wait(testTimeout); err != nil {
		t.Fatalf("pre-partition RDMA write: %v", err)
	}
	got := make([]byte, 12)
	if err := rreg.Read(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "rdma-payload" {
		t.Fatalf("remote memory = %q", got)
	}

	// Over a severed link the write must fail with a checked error on
	// the completion path — never a panic, never silent success.
	f.Partition("nodeA", "nodeB")
	d2 := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 12})
	if err := va.PostRDMAWrite(d2, rreg.Handle(), 0); err != nil {
		t.Fatalf("post itself should succeed, completion carries the fault: %v", err)
	}
	if err := d2.Wait(testTimeout); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("RDMA write over severed link: %v, want ErrLinkDown", err)
	}
	// The reliable connection is now broken; further posts report it.
	d3 := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 12})
	if err := va.PostRDMAWrite(d3, rreg.Handle(), 0); !errors.Is(err, ErrBroken) {
		t.Fatalf("RDMA write after break: %v, want ErrBroken", err)
	}
}

func TestPartitionCompletesPendingRecvWithError(t *testing.T) {
	f, na, nb, va, vb := pair(t, ReliableDelivery)

	// Park a receive descriptor on nodeB before the link is cut.
	rreg, err := nb.RegisterMemory(make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	rd := MustDescriptor(Segment{Region: rreg, Offset: 0, Len: 32})
	if err := vb.PostRecv(rd); err != nil {
		t.Fatal(err)
	}

	// Cut the link and trip the failure from the sender side.
	f.Partition("nodeA", "nodeB")
	sreg, err := na.RegisterMemory([]byte("drop"))
	if err != nil {
		t.Fatal(err)
	}
	sd := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})
	if err := va.PostSend(sd); err != nil {
		t.Fatal(err)
	}
	if err := sd.Wait(testTimeout); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("send over severed link: %v, want ErrLinkDown", err)
	}

	// The break propagates: the parked descriptor completes with a
	// checked error through the normal completion path.
	c, err := vb.RecvWait(testTimeout)
	if err != nil {
		t.Fatalf("RecvWait after break: %v", err)
	}
	if c.Desc != rd {
		t.Fatalf("unexpected completion %+v", c)
	}
	if err := rd.Err(); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("parked recv descriptor error = %v, want ErrLinkDown", err)
	}
	if rd.Status() != DescError {
		t.Fatalf("parked recv descriptor status = %v, want DescError", rd.Status())
	}
}

func TestHealRestoresNewConnections(t *testing.T) {
	f, na, nb, _, _ := pair(t, ReliableDelivery)
	f.Partition("nodeA", "nodeB")
	f.Heal("nodeA", "nodeB")

	// A fresh VI pair over the healed link works.
	ln, err := nb.Listen("svc2")
	if err != nil {
		t.Fatal(err)
	}
	vb2, _ := nb.CreateVI(ReliableDelivery, 8)
	va2, _ := na.CreateVI(ReliableDelivery, 8)
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept(vb2)
		done <- err
	}()
	if err := va2.Connect("nodeB", "svc2"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got := sendRecv(t, na, nb, va2, vb2, []byte("healed"))
	if string(got) != "healed" {
		t.Fatal("transfer over healed link failed")
	}
}

func TestConnectOverSeveredLink(t *testing.T) {
	f, na, nb, _, _ := pair(t, ReliableDelivery)
	f.Partition("nodeA", "nodeB")

	ln, err := nb.Listen("svc2")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	va2, _ := na.CreateVI(ReliableDelivery, 8)
	if err := va2.Connect("nodeB", "svc2"); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("Connect over severed link: %v, want ErrLinkDown", err)
	}
	// Healing restores dialability.
	f.Heal("nodeA", "nodeB")
	vb2, _ := nb.CreateVI(ReliableDelivery, 8)
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept(vb2)
		done <- err
	}()
	if err := va2.Connect("nodeB", "svc2"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// triad builds a three-NIC fabric with a connected reliable VI pair
// between every pair of nodes, returned as vis[i][j] = the VI on node i
// facing node j.
func triad(t *testing.T) (*Fabric, [3]*NIC, [3][3]*VI) {
	t.Helper()
	f := NewFabric()
	t.Cleanup(f.Close)
	addrs := [3]string{"n0", "n1", "n2"}
	var nics [3]*NIC
	for i, a := range addrs {
		n, err := f.CreateNIC(a)
		if err != nil {
			t.Fatal(err)
		}
		nics[i] = n
	}
	var vis [3][3]*VI
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			svc := addrs[i] + "-" + addrs[j]
			ln, err := nics[j].Listen(svc)
			if err != nil {
				t.Fatal(err)
			}
			vj, _ := nics[j].CreateVI(ReliableDelivery, 8)
			vi, _ := nics[i].CreateVI(ReliableDelivery, 8)
			done := make(chan error, 1)
			go func() {
				_, err := ln.Accept(vj)
				done <- err
			}()
			if err := vi.Connect(addrs[j], svc); err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			ln.Close()
			vis[i][j], vis[j][i] = vi, vj
		}
	}
	return f, nics, vis
}

// expectSend posts a 1-byte send on vi from nic and waits for the
// completion, returning its error.
func expectSend(t *testing.T, nic *NIC, vi *VI) error {
	t.Helper()
	reg, err := nic.RegisterMemory([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	d := MustDescriptor(Segment{Region: reg, Offset: 0, Len: 1})
	if err := vi.PostSend(d); err != nil {
		return err
	}
	return d.Wait(testTimeout)
}

func TestIsolateSeversAllLinks(t *testing.T) {
	f, nics, vis := triad(t)

	// Receivers on every link touching n1, plus the bystander link.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			reg, _ := nics[i].RegisterMemory(make([]byte, 4))
			rd := MustDescriptor(Segment{Region: reg, Offset: 0, Len: 4})
			if err := vis[i][j].PostRecv(rd); err != nil {
				t.Fatal(err)
			}
		}
	}

	f.Isolate("n1")
	if err := expectSend(t, nics[0], vis[0][1]); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("n0->n1 after Isolate(n1): %v, want ErrLinkDown", err)
	}
	if err := expectSend(t, nics[1], vis[1][2]); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("n1->n2 after Isolate(n1): %v, want ErrLinkDown", err)
	}
	// The bystander pair is untouched.
	if err := expectSend(t, nics[0], vis[0][2]); err != nil {
		t.Fatalf("n0->n2 after Isolate(n1): %v, want success", err)
	}
}

func TestHealNodeRestoresDialing(t *testing.T) {
	f, nics, _ := triad(t)
	f.Isolate("n1")

	ln, err := nics[1].Listen("svc-heal")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	dial, _ := nics[0].CreateVI(ReliableDelivery, 8)
	if err := dial.Connect("n1", "svc-heal"); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("Connect to isolated node: %v, want ErrLinkDown", err)
	}

	// A pairwise Heal must not lift node-level isolation...
	f.Heal("n0", "n1")
	if err := dial.Connect("n1", "svc-heal"); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("Connect after pairwise Heal of isolated node: %v, want ErrLinkDown", err)
	}

	// ...but HealNode does, restoring every link at once.
	f.HealNode("n1")
	acc, _ := nics[1].CreateVI(ReliableDelivery, 8)
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept(acc)
		done <- err
	}()
	if err := dial.Connect("n1", "svc-heal"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := expectSend(t, nics[0], vis0to1Recv(t, nics[1], acc, dial)); err != nil {
		t.Fatalf("send over healed node: %v", err)
	}
}

// vis0to1Recv posts a receive on the accepted side and hands back the
// dialing VI so expectSend exercises the full path.
func vis0to1Recv(t *testing.T, rnic *NIC, acc, dial *VI) *VI {
	t.Helper()
	reg, err := rnic.RegisterMemory(make([]byte, 4))
	if err != nil {
		t.Fatal(err)
	}
	rd := MustDescriptor(Segment{Region: reg, Offset: 0, Len: 4})
	if err := acc.PostRecv(rd); err != nil {
		t.Fatal(err)
	}
	return dial
}

func TestVIPeer(t *testing.T) {
	_, _, _, va, vb := pair(t, ReliableDelivery)
	addr, id, ok := va.Peer()
	if !ok || addr != "nodeB" || id != vb.ID() {
		t.Fatalf("peer = %q/%d/%v", addr, id, ok)
	}
	va.Close()
	if _, _, ok := va.Peer(); ok {
		t.Fatal("closed VI still reports a peer")
	}
}

func TestNICAttributes(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	n, _ := f.CreateNIC("x")
	a := n.Attributes()
	if !a.RDMAWrite {
		t.Error("RDMA write unsupported")
	}
	if a.RDMARead {
		t.Error("RDMA read must be unsupported (Giganet parity)")
	}
	for _, r := range a.ReliabilitySupport {
		if r != Unreliable && r != ReliableDelivery {
			t.Errorf("unexpected reliability %v", r)
		}
	}
	if len(a.ReliabilitySupport) != 2 {
		t.Errorf("reliability levels = %d", len(a.ReliabilitySupport))
	}
}
