package via

import (
	"errors"
	"testing"
	"time"
)

func TestPartitionBreaksReliableConnection(t *testing.T) {
	f, na, nb, va, vb := pair(t, ReliableDelivery)
	// Healthy transfer first.
	msg := sendRecv(t, na, nb, va, vb, []byte("before"))
	if string(msg) != "before" {
		t.Fatal("pre-partition transfer failed")
	}

	f.Partition("nodeA", "nodeB")
	sreg, _ := na.RegisterMemory([]byte("lost"))
	d := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})
	if err := va.PostSend(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Wait(testTimeout); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("send over severed link: %v", err)
	}
	// The connection is broken; healing the link does not resurrect it
	// (the application must reconnect), matching the VIA error model.
	f.Heal("nodeA", "nodeB")
	d2 := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})
	if err := va.PostSend(d2); !errors.Is(err, ErrBroken) {
		t.Fatalf("post after break: %v", err)
	}
	if vb.Err() == nil {
		t.Fatal("peer not marked broken")
	}
}

func TestPartitionSilentOnUnreliable(t *testing.T) {
	f, na, nb, va, _ := pair(t, Unreliable)
	f.Partition("nodeA", "nodeB")
	sreg, _ := na.RegisterMemory([]byte("lost"))
	d := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 4})
	if err := va.PostSend(d); err != nil {
		t.Fatal(err)
	}
	// Unreliable delivery: the loss is undetected.
	if err := d.Wait(testTimeout); err != nil {
		t.Fatalf("unreliable send over severed link reported %v", err)
	}
	deadline := time.Now().Add(testTimeout)
	for na.Stats().Drops == 0 {
		if time.Now().After(deadline) {
			t.Fatal("drop not recorded")
		}
		time.Sleep(time.Millisecond)
	}
	_ = nb
}

func TestHealRestoresNewConnections(t *testing.T) {
	f, na, nb, _, _ := pair(t, ReliableDelivery)
	f.Partition("nodeA", "nodeB")
	f.Heal("nodeA", "nodeB")

	// A fresh VI pair over the healed link works.
	ln, err := nb.Listen("svc2")
	if err != nil {
		t.Fatal(err)
	}
	vb2, _ := nb.CreateVI(ReliableDelivery, 8)
	va2, _ := na.CreateVI(ReliableDelivery, 8)
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept(vb2)
		done <- err
	}()
	if err := va2.Connect("nodeB", "svc2"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got := sendRecv(t, na, nb, va2, vb2, []byte("healed"))
	if string(got) != "healed" {
		t.Fatal("transfer over healed link failed")
	}
}

func TestVIPeer(t *testing.T) {
	_, _, _, va, vb := pair(t, ReliableDelivery)
	addr, id, ok := va.Peer()
	if !ok || addr != "nodeB" || id != vb.ID() {
		t.Fatalf("peer = %q/%d/%v", addr, id, ok)
	}
	va.Close()
	if _, _, ok := va.Peer(); ok {
		t.Fatal("closed VI still reports a peer")
	}
}

func TestNICAttributes(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	n, _ := f.CreateNIC("x")
	a := n.Attributes()
	if !a.RDMAWrite {
		t.Error("RDMA write unsupported")
	}
	if a.RDMARead {
		t.Error("RDMA read must be unsupported (Giganet parity)")
	}
	for _, r := range a.ReliabilitySupport {
		if r != Unreliable && r != ReliableDelivery {
			t.Errorf("unexpected reliability %v", r)
		}
	}
	if len(a.ReliabilitySupport) != 2 {
		t.Errorf("reliability levels = %d", len(a.ReliabilitySupport))
	}
}
