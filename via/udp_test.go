package via

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// bridgedPair builds two single-NIC fabrics in this process, joined by
// two UDPBridges over real loopback sockets — the exact topology two
// pressd processes form, minus the fork.
type bridgedPair struct {
	fa, fb *Fabric
	na, nb *NIC
	ba, bb *UDPBridge
}

func newBridgedPair(t *testing.T) *bridgedPair {
	t.Helper()
	p := &bridgedPair{fa: NewFabric(), fb: NewFabric()}
	t.Cleanup(func() {
		p.ba.Close()
		p.bb.Close()
		p.fa.Close()
		p.fb.Close()
	})
	var err error
	if p.na, err = p.fa.CreateNIC("nodeA"); err != nil {
		t.Fatal(err)
	}
	if p.nb, err = p.fb.CreateNIC("nodeB"); err != nil {
		t.Fatal(err)
	}
	if p.ba, err = NewUDPBridge(p.fa, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if p.bb, err = NewUDPBridge(p.fb, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	// Each side proxies the other, exposing the service its real
	// listener runs under.
	if err := p.ba.Proxy("nodeB", p.bb.Addr(), "svc"); err != nil {
		t.Fatal(err)
	}
	if err := p.bb.Proxy("nodeA", p.ba.Addr(), "svc"); err != nil {
		t.Fatal(err)
	}
	return p
}

// connect dials nodeA -> nodeB across the bridge and returns the bound
// pair (va in process A, vb in process B).
func (p *bridgedPair) connect(t *testing.T, rel Reliability) (*VI, *VI) {
	t.Helper()
	ln, err := p.nb.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	vb, err := p.nb.CreateVI(rel, 16)
	if err != nil {
		t.Fatal(err)
	}
	va, err := p.na.CreateVI(rel, 16)
	if err != nil {
		t.Fatal(err)
	}
	acceptErr := make(chan error, 1)
	go func() {
		_, err := ln.Accept(vb)
		acceptErr <- err
	}()
	if err := va.Connect("nodeB", "svc"); err != nil {
		t.Fatal(err)
	}
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}
	return va, vb
}

func TestBridgeSendReceive(t *testing.T) {
	p := newBridgedPair(t)
	va, vb := p.connect(t, ReliableDelivery)

	for i := 0; i < 8; i++ {
		msg := []byte(fmt.Sprintf("cross-process message %d", i))
		rbuf := make([]byte, 64)
		rreg, err := p.nb.RegisterMemory(rbuf)
		if err != nil {
			t.Fatal(err)
		}
		rd := MustDescriptor(Segment{Region: rreg, Offset: 0, Len: len(rbuf)})
		if err := vb.PostRecv(rd); err != nil {
			t.Fatal(err)
		}
		sreg, err := p.na.RegisterMemory(append([]byte(nil), msg...))
		if err != nil {
			t.Fatal(err)
		}
		sd := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: len(msg)})
		if err := va.PostSend(sd); err != nil {
			t.Fatal(err)
		}
		if err := sd.Wait(testTimeout); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if _, err := vb.RecvWait(testTimeout); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		got := make([]byte, rd.Transferred())
		if err := rreg.Read(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("message %d: got %q, want %q", i, got, msg)
		}
	}
}

func TestBridgeBidirectional(t *testing.T) {
	p := newBridgedPair(t)
	va, vb := p.connect(t, ReliableDelivery)

	// B -> A over the same channel: replies and credits flow backward.
	rbuf := make([]byte, 32)
	rreg, _ := p.na.RegisterMemory(rbuf)
	rd := MustDescriptor(Segment{Region: rreg, Offset: 0, Len: len(rbuf)})
	if err := va.PostRecv(rd); err != nil {
		t.Fatal(err)
	}
	sreg, _ := p.nb.RegisterMemory([]byte("reply"))
	sd := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 5})
	if err := vb.PostSend(sd); err != nil {
		t.Fatal(err)
	}
	if err := sd.Wait(testTimeout); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := va.RecvWait(testTimeout); err != nil {
		t.Fatalf("recv: %v", err)
	}
	got := make([]byte, rd.Transferred())
	_ = rreg.Read(got, 0)
	if string(got) != "reply" {
		t.Fatalf("got %q", got)
	}
}

func TestBridgeRDMAWrite(t *testing.T) {
	p := newBridgedPair(t)
	va, _ := p.connect(t, ReliableDelivery)

	// Register a remote-writable region in process B; its handle would
	// normally reach A through a setup message.
	dst := make([]byte, 256*1024)
	dreg, err := p.nb.RegisterMemory(dst)
	if err != nil {
		t.Fatal(err)
	}
	dreg.EnableRemoteWrite()

	// Large payload: forces fragmentation into several datagrams.
	payload := make([]byte, 200*1024)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	sreg, err := p.na.RegisterMemory(append([]byte(nil), payload...))
	if err != nil {
		t.Fatal(err)
	}
	sd := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: len(payload)})
	if err := va.PostRDMAWrite(sd, dreg.Handle(), 4096); err != nil {
		t.Fatal(err)
	}
	if err := sd.Wait(testTimeout); err != nil {
		t.Fatalf("rdma: %v", err)
	}
	// RDMA consumes no receive descriptor and raises no completion at
	// the target; poll the memory like the RMW load protocol does.
	deadline := time.Now().Add(testTimeout)
	got := make([]byte, len(payload))
	for {
		if err := dreg.Read(got, 4096); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, payload) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("remote write did not land in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBridgeReliableBreakPropagates(t *testing.T) {
	p := newBridgedPair(t)
	va, vb := p.connect(t, ReliableDelivery)

	// Reliable send with no receive descriptor posted: process B must
	// break the pair, and the break must cross back to process A.
	sreg, _ := p.na.RegisterMemory([]byte("doomed"))
	sd := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 6})
	if err := va.PostSend(sd); err != nil {
		t.Fatal(err)
	}
	_ = sd.Wait(testTimeout)

	deadline := time.Now().Add(testTimeout)
	for {
		if errors.Is(vb.Err(), ErrNoRecvDescriptor) && va.Err() != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("break did not propagate: A=%v B=%v", va.Err(), vb.Err())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Both ends now refuse traffic.
	sd2 := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: 6})
	if err := va.PostSend(sd2); !errors.Is(err, ErrBroken) {
		t.Fatalf("post on broken VI: %v", err)
	}
}

func TestBridgeConnectSurvivesLateListener(t *testing.T) {
	p := newBridgedPair(t)
	// Dial before nodeB's real listener exists: the relayed CONNECT
	// must keep retrying (multi-process startup is unordered) and
	// succeed once the service appears.
	va, err := p.na.CreateVI(ReliableDelivery, 4)
	if err != nil {
		t.Fatal(err)
	}
	dialErr := make(chan error, 1)
	go func() { dialErr <- va.Connect("nodeB", "svc") }()

	time.Sleep(600 * time.Millisecond) // several CONNECT retransmits pass
	ln, err := p.nb.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	vb, err := p.nb.CreateVI(ReliableDelivery, 4)
	if err != nil {
		t.Fatal(err)
	}
	acceptErr := make(chan error, 1)
	go func() {
		_, err := ln.Accept(vb)
		acceptErr <- err
	}()
	if err := <-dialErr; err != nil {
		t.Fatalf("late-listener dial: %v", err)
	}
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}
}

func TestBridgeOversizeSendFails(t *testing.T) {
	p := newBridgedPair(t)
	va, vb := p.connect(t, ReliableDelivery)

	rbuf := make([]byte, 128*1024)
	rreg, _ := p.nb.RegisterMemory(rbuf)
	rd := MustDescriptor(Segment{Region: rreg, Offset: 0, Len: len(rbuf)})
	if err := vb.PostRecv(rd); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, maxUDPPayload+1)
	sreg, _ := p.na.RegisterMemory(big)
	sd := MustDescriptor(Segment{Region: sreg, Offset: 0, Len: len(big)})
	if err := va.PostSend(sd); err != nil {
		t.Fatal(err)
	}
	// The engine completes the descriptor with the forwarder's error
	// and breaks the reliable channel.
	_ = sd.Wait(testTimeout)
	if err := sd.Err(); !errors.Is(err, ErrTooLong) {
		t.Fatalf("oversize send: %v", err)
	}
}
