// Package via is a software implementation of the Virtual Interface
// Architecture (VIA) industry standard for user-level communication
// (Compaq/Intel/Microsoft, 1997), the communication substrate of the
// PRESS server. It provides, in-process:
//
//   - NICs connected by a Fabric (the cluster interconnect), with
//     optional latency, bandwidth, and loss shaping;
//   - Virtual Interfaces (VIs): connected communication end-points,
//     each with a send and a receive work queue of descriptors;
//   - memory registration: every buffer involved in a transfer must be
//     registered first, mirroring the page-locking requirement that
//     enables DMA directly from user memory;
//   - completion queues (CQs) combining completions of many VIs;
//   - remote memory writes (RDMA writes) into registered remote
//     regions, with no remote-processor involvement — receivers poll
//     the region, as PRESS does with its circular buffers;
//   - two reliability levels: unreliable delivery (messages may be
//     dropped) and reliable delivery (exactly once, in order, errors
//     reported).
//
// Like the Giganet cLAN hardware used in the paper, this implementation
// supports remote memory writes but not remote memory reads, and not
// reliable reception (Section 2.1).
package via

import (
	"errors"
	"fmt"
)

// Reliability is the service level of a VI (Section 2.1). Reliable
// reception is intentionally unsupported, matching Giganet VIA.
type Reliability int

const (
	// Unreliable delivery: messages (regular and remote memory writes)
	// can be lost without being detected or retransmitted.
	Unreliable Reliability = iota
	// ReliableDelivery: data submitted for transfer arrives at the
	// destination network interface exactly once and in order, in the
	// absence of errors; errors are reported and break the connection.
	ReliableDelivery
)

// String names the reliability level.
func (r Reliability) String() string {
	switch r {
	case Unreliable:
		return "unreliable"
	case ReliableDelivery:
		return "reliable-delivery"
	default:
		return fmt.Sprintf("Reliability(%d)", int(r))
	}
}

// Errors reported by the package.
var (
	// ErrClosed: the NIC, VI, or fabric has been closed.
	ErrClosed = errors.New("via: closed")
	// ErrNotConnected: the VI is not connected to a remote VI.
	ErrNotConnected = errors.New("via: VI not connected")
	// ErrAlreadyConnected: the VI is already connected.
	ErrAlreadyConnected = errors.New("via: VI already connected")
	// ErrQueueFull: the work queue has no free descriptor slots.
	ErrQueueFull = errors.New("via: work queue full")
	// ErrNoRecvDescriptor: a reliable message arrived at a VI with no
	// posted receive descriptor; the connection is broken.
	ErrNoRecvDescriptor = errors.New("via: no receive descriptor posted")
	// ErrTooLong: the payload does not fit the receive descriptor or
	// the remote region window.
	ErrTooLong = errors.New("via: message exceeds buffer")
	// ErrProtection: the remote handle is invalid, out of bounds, or
	// not enabled for remote writes.
	ErrProtection = errors.New("via: remote memory protection violation")
	// ErrTimeout: a wait timed out.
	ErrTimeout = errors.New("via: timeout")
	// ErrUnknownAddress: no NIC with that address is on the fabric.
	ErrUnknownAddress = errors.New("via: unknown address")
	// ErrUnknownService: the remote NIC is not listening on the
	// requested service.
	ErrUnknownService = errors.New("via: unknown service")
	// ErrRejected: the remote side rejected the connection.
	ErrRejected = errors.New("via: connection rejected")
	// ErrBroken: the connection has been broken by a previous error.
	ErrBroken = errors.New("via: connection broken")
	// ErrRegionReleased: the memory region has been deregistered.
	ErrRegionReleased = errors.New("via: memory region deregistered")
)
