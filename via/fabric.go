package via

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"press/metrics"
)

// FabricOption configures a Fabric.
type FabricOption func(*Fabric)

// WithLatency sets the one-way propagation latency applied to every
// transfer.
func WithLatency(d time.Duration) FabricOption {
	return func(f *Fabric) { f.latency = d }
}

// WithBandwidth caps the per-NIC transmit rate in bytes per second
// (0 = unlimited).
func WithBandwidth(bytesPerSec float64) FabricOption {
	return func(f *Fabric) { f.bandwidth = bytesPerSec }
}

// WithLoss drops the given fraction of unreliable transfers
// (reliable-delivery VIs are unaffected, as the hardware retransmits).
func WithLoss(rate float64) FabricOption {
	return func(f *Fabric) { f.lossRate = rate }
}

// WithSeed seeds the deterministic loss process.
func WithSeed(seed int64) FabricOption {
	return func(f *Fabric) { f.seed = seed }
}

// WithMetrics attaches an observability registry: every NIC created on
// the fabric registers per-NIC counters (sends, receives, remote
// writes, bytes, drops), a descriptor work-queue depth gauge, and a
// send completion-latency histogram. A nil registry (the default)
// disables the latency/depth instrumentation entirely; the counters
// always run, as they back NIC.Stats.
func WithMetrics(r *metrics.Registry) FabricOption {
	return func(f *Fabric) { f.metrics = r }
}

// Fabric is the cluster interconnect: it owns the NIC address space and
// the link-shaping parameters. All NICs on one fabric can connect to
// each other.
type Fabric struct {
	latency   time.Duration
	bandwidth float64
	lossRate  float64
	seed      int64
	metrics   *metrics.Registry

	mu       sync.Mutex
	nics     map[string]*NIC
	rng      *rand.Rand
	severed  map[linkKey]struct{}
	isolated map[string]struct{}
	slowed   map[string]time.Duration
	closed   bool
}

// NewFabric creates an interconnect.
func NewFabric(opts ...FabricOption) *Fabric {
	f := &Fabric{nics: make(map[string]*NIC)}
	for _, o := range opts {
		o(f)
	}
	f.rng = rand.New(rand.NewSource(f.seed))
	return f
}

// CreateNIC attaches a new NIC with the given address to the fabric
// and starts its processing engine.
func (f *Fabric) CreateNIC(addr string, opts ...NICOption) (*NIC, error) {
	if addr == "" {
		return nil, fmt.Errorf("via: empty NIC address")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	if _, dup := f.nics[addr]; dup {
		return nil, fmt.Errorf("via: address %q already on fabric", addr)
	}
	n := newNIC(f, addr, opts...)
	f.nics[addr] = n
	return n, nil
}

// lookup resolves an address to its NIC.
func (f *Fabric) lookup(addr string) (*NIC, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	n, ok := f.nics[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAddress, addr)
	}
	return n, nil
}

// drop decides whether an unreliable transfer is lost.
func (f *Fabric) drop() bool {
	if f.lossRate <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64() < f.lossRate
}

// transferDelay returns the shaping delay for a payload of n bytes.
func (f *Fabric) transferDelay(n int) time.Duration {
	d := f.latency
	if f.bandwidth > 0 {
		d += time.Duration(float64(n) / f.bandwidth * 1e9)
	}
	return d
}

// Close shuts down the fabric and every NIC on it.
func (f *Fabric) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	nics := make([]*NIC, 0, len(f.nics))
	for _, n := range f.nics {
		nics = append(nics, n)
	}
	f.mu.Unlock()
	for _, n := range nics {
		n.Close()
	}
}

func (f *Fabric) remove(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.nics, addr)
}
