package via

import (
	"fmt"
	"sync"
	"time"

	"press/metrics"
)

// Stats counts a NIC's activity.
type Stats struct {
	SendsPosted   int64
	RecvsPosted   int64
	SendsComplete int64
	RecvsComplete int64
	RDMAWrites    int64
	BytesSent     int64
	Drops         int64
}

// nicMetrics holds a NIC's instruments. The counters always exist —
// they back Stats — either standalone or interned in the fabric's
// registry under a nic=<addr> label. The depth gauge and the send
// completion-latency histogram exist only with a registry attached, so
// the disabled path never reads the clock.
type nicMetrics struct {
	sendsPosted   *metrics.Counter
	recvsPosted   *metrics.Counter
	sendsComplete *metrics.Counter
	recvsComplete *metrics.Counter
	rdmaWrites    *metrics.Counter
	bytesSent     *metrics.Counter
	drops         *metrics.Counter
	workDepth     *metrics.Gauge
	sendLatency   *metrics.Histogram
}

func newNICMetrics(r *metrics.Registry, addr string) nicMetrics {
	if !r.Enabled() {
		return nicMetrics{
			sendsPosted:   metrics.NewCounter(),
			recvsPosted:   metrics.NewCounter(),
			sendsComplete: metrics.NewCounter(),
			recvsComplete: metrics.NewCounter(),
			rdmaWrites:    metrics.NewCounter(),
			bytesSent:     metrics.NewCounter(),
			drops:         metrics.NewCounter(),
		}
	}
	label := "nic=" + addr
	return nicMetrics{
		sendsPosted:   r.Counter("via_sends_posted_total", label),
		recvsPosted:   r.Counter("via_recvs_posted_total", label),
		sendsComplete: r.Counter("via_sends_complete_total", label),
		recvsComplete: r.Counter("via_recvs_complete_total", label),
		rdmaWrites:    r.Counter("via_rmw_total", label),
		bytesSent:     r.Counter("via_sent_bytes", label),
		drops:         r.Counter("via_drops_total", label),
		workDepth:     r.Gauge("via_workq_depth", label),
		sendLatency:   r.Histogram("via_send_latency_ns", label),
	}
}

// NIC is one node's network interface. Processes gain user-level access
// to it by creating VIs and registering memory; a single engine
// goroutine (the DMA engine) processes posted descriptors
// asynchronously, in doorbell order.
type NIC struct {
	fabric *Fabric
	addr   string

	mu         sync.Mutex
	closed     bool
	regions    map[Handle]*MemoryRegion
	nextHandle Handle
	vis        map[uint32]*VI
	nextVI     uint32
	listeners  map[string]*Listener

	// fw, when set, marks this NIC as a proxy fronting for a NIC in
	// another OS process: deliveries addressed to it are forwarded over
	// a real wire instead of landing in local descriptors, and local
	// connection breaks are relayed out. Set once before any VI is
	// bound (see UDPBridge), immutable afterwards.
	fw forwarder

	work chan workItem
	done chan struct{}

	m nicMetrics
}

type opcode int

const (
	opSend opcode = iota
	opRDMA
)

type workItem struct {
	vi     *VI
	desc   *Descriptor
	op     opcode
	posted time.Time // set only when the send-latency histogram is live
}

// defaultWorkDepth is the descriptor work-queue capacity when
// WithWorkDepth is not given.
const defaultWorkDepth = 4096

// NICOption configures a NIC at creation.
type NICOption func(*nicConfig)

type nicConfig struct {
	workDepth int
}

// WithWorkDepth sets the NIC's descriptor work-queue capacity
// (default 4096). n <= 0 keeps the default.
func WithWorkDepth(n int) NICOption {
	return func(c *nicConfig) {
		if n > 0 {
			c.workDepth = n
		}
	}
}

func newNIC(f *Fabric, addr string, opts ...NICOption) *NIC {
	cfg := nicConfig{workDepth: defaultWorkDepth}
	for _, o := range opts {
		o(&cfg)
	}
	n := &NIC{
		fabric:    f,
		addr:      addr,
		regions:   make(map[Handle]*MemoryRegion),
		vis:       make(map[uint32]*VI),
		listeners: make(map[string]*Listener),
		work:      make(chan workItem, cfg.workDepth),
		done:      make(chan struct{}),
		m:         newNICMetrics(f.metrics, addr),
	}
	go n.engine()
	return n
}

// Addr returns the NIC's fabric address.
func (n *NIC) Addr() string { return n.addr }

// Attributes describes a NIC's capabilities, the VipQueryNic analogue.
type Attributes struct {
	// MaxTransferSize is the largest single transfer (unbounded here;
	// reported as 1<<31 - 1 for parity with 32-bit length fields).
	MaxTransferSize int
	// MaxRegisteredBytes reports the registration budget (unbounded).
	MaxRegisteredBytes int64
	// ReliabilitySupport lists the service levels this NIC offers;
	// reliable reception is absent, as on Giganet VIA.
	ReliabilitySupport []Reliability
	// RDMAWrite and RDMARead report remote-memory-access support;
	// remote reads are unsupported, as on Giganet VIA.
	RDMAWrite bool
	RDMARead  bool
}

// Attributes returns the NIC's capability description.
func (n *NIC) Attributes() Attributes {
	return Attributes{
		MaxTransferSize:    1<<31 - 1,
		MaxRegisteredBytes: 1<<63 - 1,
		ReliabilitySupport: []Reliability{Unreliable, ReliableDelivery},
		RDMAWrite:          true,
		RDMARead:           false,
	}
}

// Stats returns a snapshot of the NIC's counters.
func (n *NIC) Stats() Stats {
	return Stats{
		SendsPosted:   n.m.sendsPosted.Value(),
		RecvsPosted:   n.m.recvsPosted.Value(),
		SendsComplete: n.m.sendsComplete.Value(),
		RecvsComplete: n.m.recvsComplete.Value(),
		RDMAWrites:    n.m.rdmaWrites.Value(),
		BytesSent:     n.m.bytesSent.Value(),
		Drops:         n.m.drops.Value(),
	}
}

// RegisterMemory registers buf for communication, returning the region.
// The buffer is owned by the region until DeregisterMemory.
func (n *NIC) RegisterMemory(buf []byte) (*MemoryRegion, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("via: cannot register empty buffer")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	n.nextHandle++
	r := &MemoryRegion{nic: n, handle: n.nextHandle, buf: buf}
	n.regions[r.handle] = r
	return r, nil
}

// DeregisterMemory releases the region; subsequent transfers touching
// it fail.
func (n *NIC) DeregisterMemory(r *MemoryRegion) error {
	if r == nil || r.nic != n {
		return fmt.Errorf("via: region not registered with this NIC")
	}
	n.mu.Lock()
	delete(n.regions, r.handle)
	n.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buf == nil {
		return ErrRegionReleased
	}
	r.buf = nil
	return nil
}

// region resolves a handle for remote writes.
func (n *NIC) region(h Handle) (*MemoryRegion, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.regions[h]
	return r, ok
}

// CreateVI creates a communication end-point with the given reliability
// level and work-queue depth (sends and receives each). depth <= 0 uses
// the default of 64.
func (n *NIC) CreateVI(rel Reliability, depth int) (*VI, error) {
	if rel != Unreliable && rel != ReliableDelivery {
		return nil, fmt.Errorf("via: unsupported reliability %v (reliable reception is not provided, as on Giganet VIA)", rel)
	}
	if depth <= 0 {
		depth = 64
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	n.nextVI++
	vi := newVI(n, n.nextVI, rel, depth)
	n.vis[vi.id] = vi
	return vi, nil
}

func (n *NIC) vi(id uint32) (*VI, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.vis[id]
	return v, ok
}

// post rings the doorbell: the engine will process the descriptor.
func (n *NIC) post(w workItem) error {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if n.m.sendLatency != nil {
		w.posted = time.Now()
	}
	select {
	case n.work <- w:
		n.m.workDepth.Set(int64(len(n.work)))
		return nil
	case <-n.done:
		return ErrClosed
	}
}

// engine is the DMA engine: it serializes the NIC's outbound transfers,
// applying the fabric's shaping, and delivers them into the remote NIC.
func (n *NIC) engine() {
	for {
		select {
		case <-n.done:
			n.drainWork()
			return
		case w := <-n.work:
			n.process(w)
		}
	}
}

func (n *NIC) drainWork() {
	for {
		select {
		case w := <-n.work:
			w.desc.complete(0, ErrClosed)
		default:
			return
		}
	}
}

func (n *NIC) process(w workItem) {
	n.m.workDepth.Set(int64(len(n.work)))
	payload, err := w.desc.gather()
	if err != nil {
		n.completeSend(w, 0, err)
		return
	}
	peer, peerVI, perr := w.vi.peerRef()
	if perr != nil {
		n.completeSend(w, 0, perr)
		return
	}
	if d := n.fabric.transferDelay(len(payload)); d > 0 {
		sleep(d)
	}
	if d := n.fabric.slowDelay(n.addr, peer.addr); d > 0 {
		// Slow-node fault injection: the transfer succeeds, just late.
		sleep(d)
	}
	if !n.fabric.linkUp(n.addr, peer.addr) {
		if w.vi.reliability == Unreliable {
			// Lost without detection.
			n.m.drops.Inc()
			n.completeSend(w, len(payload), nil)
			return
		}
		err := fmt.Errorf("%w: %s <-> %s", ErrLinkDown, n.addr, peer.addr)
		w.vi.breakConn(err)
		n.completeSend(w, 0, err)
		return
	}
	if w.vi.reliability == Unreliable && n.fabric.drop() {
		n.m.drops.Inc()
		// Lost on the wire: the local completion still succeeds, as the
		// interface has no way to know.
		n.completeSend(w, len(payload), nil)
		return
	}
	switch w.op {
	case opSend:
		err = peer.deliverSend(peerVI, payload, w.vi.reliability)
	case opRDMA:
		err = peer.deliverRDMA(w.desc.remoteHandle, w.desc.remoteOffset, payload)
		if err == nil {
			n.m.rdmaWrites.Inc()
		}
	}
	if err != nil && w.vi.reliability == Unreliable {
		// Undetected loss: a missing receive descriptor or protection
		// fault at the receiver is silent for unreliable service.
		n.m.drops.Inc()
		err = nil
	}
	if err != nil {
		w.vi.breakConn(err)
	}
	n.m.bytesSent.Add(int64(len(payload)))
	n.completeSend(w, len(payload), err)
}

func (n *NIC) completeSend(w workItem, bytes int, err error) {
	w.desc.complete(bytes, err)
	n.m.sendsComplete.Inc()
	if n.m.sendLatency != nil && !w.posted.IsZero() {
		n.m.sendLatency.Observe(int64(time.Since(w.posted)))
	}
	w.vi.sendCompleted(w.desc, err)
}

// forwarder intercepts a proxy NIC's deliveries (see NIC.fw).
type forwarder interface {
	// forwardSend relays a send addressed to proxy VI viID.
	forwardSend(viID uint32, payload []byte, rel Reliability) error
	// forwardRDMA relays a remote write addressed to the proxied NIC.
	forwardRDMA(h Handle, off int, payload []byte) error
	// viBroken reports that proxy VI viID transitioned to broken, so
	// the real peer process can be told.
	viBroken(viID uint32, err error)
}

// deliverSend is the receive path: match the message with the target
// VI's next receive descriptor and scatter the payload into it. On a
// proxy NIC the payload is forwarded to the real process instead.
func (n *NIC) deliverSend(viID uint32, payload []byte, rel Reliability) error {
	if n.fw != nil {
		return n.fw.forwardSend(viID, payload, rel)
	}
	vi, ok := n.vi(viID)
	if !ok {
		return fmt.Errorf("%w: VI %d gone", ErrBroken, viID)
	}
	d := vi.popRecv()
	if d == nil {
		if rel == ReliableDelivery {
			err := ErrNoRecvDescriptor
			vi.breakConn(err)
			return err
		}
		n.m.drops.Inc()
		return nil
	}
	written, err := d.scatter(payload)
	d.complete(written, err)
	n.m.recvsComplete.Inc()
	vi.recvCompleted(d, err)
	if err != nil && rel == ReliableDelivery {
		vi.breakConn(err)
		return err
	}
	return nil
}

// deliverRDMA is the remote-memory-write path: data lands directly in
// the registered region with no processor or descriptor involvement.
// On a proxy NIC the write is forwarded to the real process.
func (n *NIC) deliverRDMA(h Handle, off int, payload []byte) error {
	if n.fw != nil {
		return n.fw.forwardRDMA(h, off, payload)
	}
	r, ok := n.region(h)
	if !ok {
		return fmt.Errorf("%w: unknown handle %d", ErrProtection, h)
	}
	return r.rdmaWrite(payload, off)
}

// Close shuts the NIC down: the engine stops, pending descriptors and
// connections complete with ErrClosed.
func (n *NIC) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	vis := make([]*VI, 0, len(n.vis))
	for _, v := range n.vis {
		vis = append(vis, v)
	}
	listeners := make([]*Listener, 0, len(n.listeners))
	for _, l := range n.listeners {
		listeners = append(listeners, l)
	}
	n.mu.Unlock()

	close(n.done)
	for _, l := range listeners {
		l.Close()
	}
	for _, v := range vis {
		v.Close()
	}
	n.fabric.remove(n.addr)
}

// sleep is a test seam for the fabric shaping delay.
var sleep = defaultSleep
