package via

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// UDPBridge extends a Fabric across OS processes: for each remote
// process it creates a local *proxy NIC* carrying the remote node's
// fabric address, so lookups, connection brokering, fault injection,
// and VI binding all behave exactly as in-process — and everything
// delivered INTO a proxy (sends, remote memory writes, connection
// breaks) is framed over a net.PacketConn to the process that owns the
// real NIC, where the mirror-image proxy feeds it into the real VI.
// Descriptor, credit, and RMW semantics are preserved end to end: a
// missing receive descriptor still breaks a reliable channel (the
// break is relayed back), credits ride as ordinary sends, and RDMA
// frames carry the real NIC's region handles.
//
// Caveats of the wire: UDP frames can be lost or reordered. Loopback
// and same-host traffic make this rare, and the paper's own unreliable
// VIA mode has the same property — but a ReliableDelivery channel over
// the bridge is "reliable minus the wire", not a retransmitting
// transport. One relayed send must fit one datagram (maxUDPPayload);
// remote writes are fragmented into offset-adjusted chunks, which
// offset-write semantics make safe. Connection setup retransmits, so
// only it fully survives loss.

const (
	// maxUDPPayload bounds one relayed send (header excluded). Regular
	// channels chunk file data well below this; a chunk size above it
	// must not be used over the bridge.
	maxUDPPayload = 60000
	// udpConnectRetry and udpConnectTimeout pace connection setup
	// retransmission, the only reliable part of the wire protocol.
	udpConnectRetry   = 250 * time.Millisecond
	udpConnectTimeout = 10 * time.Second
	// udpSockBuf sizes the socket buffers: bursts of relayed file
	// chunks must not overrun the kernel default.
	udpSockBuf = 4 << 20
)

// Frame kinds. All integers little-endian; strings length-prefixed
// (str8: u8 length, str16: u16 length).
//
//	CONNECT {token u64, rel u8, chanA u64, fromAddr str8, toAddr str8, service str8}
//	REPLY   {token u64, ok u8, chanB u64, err str16}
//	SEND    {dstChan u64, rel u8, payload...}
//	RDMA    {handle u64, offset u64, payload...}
//	BREAK   {dstChan u64, err str16}
const (
	udpConnect = iota + 1
	udpReply
	udpSend
	udpRDMA
	udpBreak
)

// bChan is one live cross-process VI channel: the local proxy VI and
// the id the remote bridge knows the mirror channel by. A channel is
// registered BEFORE its VI pair is bound — the remote's first sends
// can outrace the setup reply on the wire — so until ready, inbound
// payloads queue in arrival order and drain at bind time.
type bChan struct {
	pv         *VI
	remoteChan uint64
	raddr      net.Addr
	ready      bool
	queue      [][]byte
}

// bChanQueueMax bounds the pre-bind queue; the race window is
// microseconds, so hitting the cap means something is wedged and
// dropping (the unreliable-wire caveat) beats unbounded growth.
const bChanQueueMax = 1024

// pendingDial is a locally initiated connection waiting for the
// remote's reply.
type pendingDial struct {
	req      *connReq
	pv       *VI
	proxy    *NIC
	chanAID  uint64
	resolved chan struct{}
}

type fwdKey struct {
	addr string // proxy NIC address
	vi   uint32
}

// UDPBridge relays one process's share of a cross-process Fabric.
type UDPBridge struct {
	fabric *Fabric
	pc     net.PacketConn

	mu       sync.Mutex
	proxies  map[string]*NIC     // via address -> proxy NIC
	raddrs   map[string]net.Addr // via address -> remote bridge endpoint
	chans    map[uint64]*bChan   // local channel id -> state
	fwd      map[fwdKey]*bChan   // (proxy addr, proxy VI id) -> state
	pending  map[uint64]*pendingDial
	accepted map[string][]byte // dedup: "fromAddr/token" -> cached REPLY frame
	closed   bool

	nextChan atomic.Uint64
	nextTok  atomic.Uint64

	done chan struct{}
	wg   sync.WaitGroup
}

// NewUDPBridge binds addr (host:port, "127.0.0.1:0" for ephemeral) and
// starts relaying. Remote processes are added with Proxy.
func NewUDPBridge(f *Fabric, addr string) (*UDPBridge, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("via: bridge listen: %w", err)
	}
	if uc, ok := pc.(*net.UDPConn); ok {
		_ = uc.SetReadBuffer(udpSockBuf)
		_ = uc.SetWriteBuffer(udpSockBuf)
	}
	b := &UDPBridge{
		fabric:   f,
		pc:       pc,
		proxies:  make(map[string]*NIC),
		raddrs:   make(map[string]net.Addr),
		chans:    make(map[uint64]*bChan),
		fwd:      make(map[fwdKey]*bChan),
		pending:  make(map[uint64]*pendingDial),
		accepted: make(map[string][]byte),
		done:     make(chan struct{}),
	}
	// Seed the id spaces per process life. A restarted process must not
	// reuse the tokens or channel ids of its previous one: a peer still
	// holds that life's dedup cache (a colliding CONNECT would be
	// answered with a stale cached REPLY) and its dead channels (a
	// colliding id would route a stale frame into the new life).
	seed := uint64(time.Now().UnixNano())
	b.nextChan.Store(seed)
	b.nextTok.Store(seed)
	b.wg.Add(1)
	go b.readLoop()
	return b, nil
}

// Addr returns the bridge's bound UDP endpoint.
func (b *UDPBridge) Addr() string { return b.pc.LocalAddr().String() }

// Proxy registers a remote process: viaAddr is the remote node's
// fabric address, udpAddr its bridge endpoint, and services the
// listener names local VIs may dial on it. A proxy NIC with viaAddr
// appears on the local fabric; dialing one of its services relays the
// connection to the real process.
func (b *UDPBridge) Proxy(viaAddr, udpAddr string, services ...string) error {
	raddr, err := net.ResolveUDPAddr("udp", udpAddr)
	if err != nil {
		return fmt.Errorf("via: bridge peer %s: %w", viaAddr, err)
	}
	nic, err := b.fabric.CreateNIC(viaAddr)
	if err != nil {
		return err
	}
	// Safe unsynchronized: no VI exists on the NIC yet, so nothing can
	// observe fw before this write.
	nic.fw = &proxyFwd{b: b, addr: viaAddr}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		nic.Close()
		return ErrClosed
	}
	b.proxies[viaAddr] = nic
	b.raddrs[viaAddr] = raddr
	b.mu.Unlock()
	for _, svc := range services {
		l, err := nic.Listen(svc)
		if err != nil {
			return err
		}
		b.wg.Add(1)
		go b.acceptPump(nic, l, svc)
	}
	return nil
}

// proxyFwd is the forwarder installed on one proxy NIC.
type proxyFwd struct {
	b    *UDPBridge
	addr string
}

func (p *proxyFwd) chanFor(viID uint32) (*bChan, bool) {
	p.b.mu.Lock()
	defer p.b.mu.Unlock()
	bc, ok := p.b.fwd[fwdKey{p.addr, viID}]
	return bc, ok
}

func (p *proxyFwd) forwardSend(viID uint32, payload []byte, rel Reliability) error {
	bc, ok := p.chanFor(viID)
	if !ok {
		return fmt.Errorf("%w: no bridge channel for VI %d on %s", ErrBroken, viID, p.addr)
	}
	if len(payload) > maxUDPPayload {
		return fmt.Errorf("%w: %d-byte send exceeds the bridge datagram limit %d", ErrTooLong, len(payload), maxUDPPayload)
	}
	frame := make([]byte, 0, 10+len(payload))
	frame = append(frame, udpSend)
	frame = binary.LittleEndian.AppendUint64(frame, bc.remoteChan)
	frame = append(frame, byte(rel))
	frame = append(frame, payload...)
	_, err := p.b.pc.WriteTo(frame, bc.raddr)
	return err
}

func (p *proxyFwd) forwardRDMA(h Handle, off int, payload []byte) error {
	p.b.mu.Lock()
	raddr, ok := p.b.raddrs[p.addr]
	p.b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s not proxied", ErrUnknownAddress, p.addr)
	}
	// Remote-write semantics — bytes land at an offset in a registered
	// region, no descriptors consumed — make fragmentation trivially
	// correct: each chunk carries its own adjusted offset.
	for base := 0; base == 0 || base < len(payload); base += maxUDPPayload {
		end := base + maxUDPPayload
		if end > len(payload) {
			end = len(payload)
		}
		chunk := payload[base:end]
		frame := make([]byte, 0, 17+len(chunk))
		frame = append(frame, udpRDMA)
		frame = binary.LittleEndian.AppendUint64(frame, uint64(h))
		frame = binary.LittleEndian.AppendUint64(frame, uint64(off+base))
		frame = append(frame, chunk...)
		if _, err := p.b.pc.WriteTo(frame, raddr); err != nil {
			return err
		}
	}
	return nil
}

func (p *proxyFwd) viBroken(viID uint32, err error) {
	bc, ok := p.chanFor(viID)
	if !ok {
		return
	}
	p.b.mu.Lock()
	delete(p.b.fwd, fwdKey{p.addr, viID})
	p.b.mu.Unlock()
	msg := err.Error()
	if len(msg) > 512 {
		msg = msg[:512]
	}
	frame := make([]byte, 0, 11+len(msg))
	frame = append(frame, udpBreak)
	frame = binary.LittleEndian.AppendUint64(frame, bc.remoteChan)
	frame = binary.LittleEndian.AppendUint16(frame, uint16(len(msg)))
	frame = append(frame, msg...)
	_, _ = p.b.pc.WriteTo(frame, bc.raddr)
}

// acceptPump relays connection requests that local VIs dial into a
// proxy listener: hold the dialer, push a CONNECT to the real process
// until its reply arrives, then bind and answer.
func (b *UDPBridge) acceptPump(proxy *NIC, l *Listener, service string) {
	defer b.wg.Done()
	for {
		select {
		case req := <-l.ch:
			b.wg.Add(1)
			go b.relayDial(proxy, service, req)
		case <-l.closed:
			return
		case <-b.done:
			return
		}
	}
}

func (b *UDPBridge) relayDial(proxy *NIC, service string, req *connReq) {
	defer b.wg.Done()
	pv, err := proxy.CreateVI(req.fromVI.reliability, req.fromVI.depth)
	if err != nil {
		req.reply <- err
		return
	}
	tok := b.nextTok.Add(1)
	pd := &pendingDial{
		req:      req,
		pv:       pv,
		proxy:    proxy,
		chanAID:  b.nextChan.Add(1),
		resolved: make(chan struct{}),
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		pv.Close()
		req.reply <- ErrClosed
		return
	}
	raddr := b.raddrs[proxy.addr]
	b.pending[tok] = pd
	// Register the channel now, unready: the acceptor's first sends can
	// reach us before its REPLY does, and they must queue, not drop.
	b.chans[pd.chanAID] = &bChan{pv: pv, raddr: raddr}
	b.mu.Unlock()

	frame := make([]byte, 0, 64)
	frame = append(frame, udpConnect)
	frame = binary.LittleEndian.AppendUint64(frame, tok)
	frame = append(frame, byte(req.fromVI.reliability))
	frame = binary.LittleEndian.AppendUint64(frame, pd.chanAID)
	for _, s := range []string{req.fromVI.nic.addr, proxy.addr, service} {
		frame = append(frame, byte(len(s)))
		frame = append(frame, s...)
	}

	// abandon takes the dial back from handleReply; if a reply won the
	// race, the handler owns answering the dialer and we just wait.
	abandon := func(failure error) {
		b.mu.Lock()
		_, mine := b.pending[tok]
		delete(b.pending, tok)
		if mine {
			delete(b.chans, pd.chanAID)
		}
		b.mu.Unlock()
		if !mine {
			<-pd.resolved
			return
		}
		pv.Close()
		req.reply <- failure
	}

	deadline := time.NewTimer(udpConnectTimeout)
	defer deadline.Stop()
	retry := time.NewTicker(udpConnectRetry)
	defer retry.Stop()
	_, _ = b.pc.WriteTo(frame, raddr)
	for {
		select {
		case <-pd.resolved:
			// handleReply bound and answered (or rejected) the dialer.
			return
		case <-retry.C:
			_, _ = b.pc.WriteTo(frame, raddr)
		case <-deadline.C:
			abandon(fmt.Errorf("%w: connect to %s over bridge", ErrTimeout, proxy.addr))
			return
		case <-b.done:
			abandon(ErrClosed)
			return
		}
	}
}

func (b *UDPBridge) readLoop() {
	defer b.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, from, err := b.pc.ReadFrom(buf)
		if err != nil {
			return // socket closed
		}
		if n < 1 {
			continue
		}
		frame := make([]byte, n-1)
		copy(frame, buf[1:n])
		switch buf[0] {
		case udpConnect:
			b.handleConnect(frame, from)
		case udpReply:
			b.handleReply(frame, from)
		case udpSend:
			b.handleSend(frame)
		case udpRDMA:
			b.handleRDMA(frame)
		case udpBreak:
			b.handleBreak(frame)
		}
	}
}

func takeStr8(buf []byte) (string, []byte, bool) {
	if len(buf) < 1 || len(buf) < 1+int(buf[0]) {
		return "", nil, false
	}
	n := int(buf[0])
	return string(buf[1 : 1+n]), buf[1+n:], true
}

// handleConnect accepts a relayed dial: create the mirror proxy VI for
// the remote dialer and connect it to the real local listener, exactly
// as the remote VI would in-process.
func (b *UDPBridge) handleConnect(frame []byte, from net.Addr) {
	if len(frame) < 17 {
		return
	}
	tok := binary.LittleEndian.Uint64(frame)
	rel := Reliability(frame[8])
	chanA := binary.LittleEndian.Uint64(frame[9:])
	rest := frame[17:]
	fromAddr, rest, ok1 := takeStr8(rest)
	toAddr, rest, ok2 := takeStr8(rest)
	service, _, ok3 := takeStr8(rest)
	if !ok1 || !ok2 || !ok3 {
		return
	}
	key := fmt.Sprintf("%s/%d", fromAddr, tok)
	b.mu.Lock()
	if cached, dup := b.accepted[key]; dup {
		// Retransmitted CONNECT. Re-send the cached verdict; nil means
		// the first copy is still dialing — the initiator's retry ticker
		// keeps asking until a verdict exists.
		b.mu.Unlock()
		if cached != nil {
			_, _ = b.pc.WriteTo(cached, from)
		}
		return
	}
	b.accepted[key] = nil
	proxy := b.proxies[fromAddr]
	b.mu.Unlock()

	reply := func(ok bool, chanB uint64, msg string) {
		if len(msg) > 512 {
			msg = msg[:512]
		}
		f := make([]byte, 0, 20+len(msg))
		f = append(f, udpReply)
		f = binary.LittleEndian.AppendUint64(f, tok)
		if ok {
			f = append(f, 1)
		} else {
			f = append(f, 0)
		}
		f = binary.LittleEndian.AppendUint64(f, chanB)
		f = binary.LittleEndian.AppendUint16(f, uint16(len(msg)))
		f = append(f, msg...)
		b.mu.Lock()
		b.accepted[key] = f
		b.mu.Unlock()
		_, _ = b.pc.WriteTo(f, from)
	}
	if proxy == nil {
		reply(false, 0, fmt.Sprintf("no proxy for %q", fromAddr))
		return
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		pv, err := proxy.CreateVI(rel, 64)
		if err != nil {
			reply(false, 0, err.Error())
			return
		}
		// Register the channel BEFORE dialing: the Accept inside Connect
		// binds the local VI, and its owner may send on it the instant the
		// bind lands — the forwarder must already know the route.
		chanB := b.nextChan.Add(1)
		// Ready at birth: the remote learns chanB only from our reply, so
		// no inbound send can precede the bind; outbound routing (the
		// remote channel id and endpoint) is already known.
		bc := &bChan{pv: pv, remoteChan: chanA, raddr: from, ready: true}
		b.mu.Lock()
		b.chans[chanB] = bc
		b.fwd[fwdKey{proxy.addr, pv.id}] = bc
		b.mu.Unlock()
		unregister := func() {
			b.mu.Lock()
			delete(b.chans, chanB)
			delete(b.fwd, fwdKey{proxy.addr, pv.id})
			b.mu.Unlock()
		}
		// Dialing the real listener blocks until the transport accepts,
		// exactly as the remote dialer would in-process; the remote side
		// keeps its dialer parked until our reply.
		if err := pv.Connect(toAddr, service); err != nil {
			unregister()
			pv.Close()
			if errors.Is(err, ErrUnknownService) {
				// Startup race: the dial crossed the wire before this
				// process's transport registered its listener. Forget the
				// dedup entry and stay silent — the dialer's retransmit
				// retries until the listener exists or its deadline fires.
				b.mu.Lock()
				delete(b.accepted, key)
				b.mu.Unlock()
				return
			}
			reply(false, 0, err.Error())
			return
		}
		reply(true, chanB, "")
	}()
}

// handleReply resolves a locally initiated relayed dial.
func (b *UDPBridge) handleReply(frame []byte, from net.Addr) {
	if len(frame) < 19 {
		return
	}
	tok := binary.LittleEndian.Uint64(frame)
	ok := frame[8] == 1
	chanB := binary.LittleEndian.Uint64(frame[9:])
	msgLen := int(binary.LittleEndian.Uint16(frame[17:]))
	msg := ""
	if len(frame) >= 19+msgLen {
		msg = string(frame[19 : 19+msgLen])
	}
	b.mu.Lock()
	pd, found := b.pending[tok]
	delete(b.pending, tok)
	b.mu.Unlock()
	if !found {
		return // duplicate reply, or the dial timed out
	}
	fail := func(err error) {
		b.mu.Lock()
		delete(b.chans, pd.chanAID)
		b.mu.Unlock()
		pd.pv.Close()
		pd.req.reply <- err
		close(pd.resolved)
	}
	if !ok {
		fail(fmt.Errorf("%w: %s", ErrRejected, msg))
		return
	}
	if err := bind(pd.req.fromVI, pd.pv); err != nil {
		fail(err)
		return
	}
	b.mu.Lock()
	bc := b.chans[pd.chanAID]
	var queued [][]byte
	if bc != nil {
		bc.remoteChan, bc.raddr, bc.ready = chanB, from, true
		queued, bc.queue = bc.queue, nil
		b.fwd[fwdKey{pd.proxy.addr, pd.pv.id}] = bc
	}
	b.mu.Unlock()
	// Sends that outran the reply deliver now, in arrival order, before
	// the dialer is released (it cannot post until reply anyway).
	for _, payload := range queued {
		b.deliverChan(bc, payload)
	}
	pd.req.reply <- nil
	close(pd.resolved)
}

// deliverChan feeds one relayed payload into the real local VI behind
// a bound bridge channel.
func (b *UDPBridge) deliverChan(bc *bChan, payload []byte) {
	realNIC, realVI, err := bc.pv.peerRef()
	if err != nil {
		return
	}
	// Delivery errors break the VI pair inside deliverSend; the proxy
	// side of the break reaches viBroken, which reports it back.
	_ = realNIC.deliverSend(realVI, payload, bc.pv.reliability)
}

// handleSend feeds a relayed send into the real local VI the proxy is
// bound to, with full receive-descriptor semantics: a missing
// descriptor on a reliable channel breaks the VI pair right here, and
// the break relays back through the forwarder hook.
func (b *UDPBridge) handleSend(frame []byte) {
	if len(frame) < 9 {
		return
	}
	ch := binary.LittleEndian.Uint64(frame)
	payload := frame[9:]
	b.mu.Lock()
	bc := b.chans[ch]
	if bc != nil && !bc.ready {
		// The channel is still binding (this send outran the setup
		// reply): hold the payload, in order, until the bind lands.
		if len(bc.queue) < bChanQueueMax {
			bc.queue = append(bc.queue, payload)
		}
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	if bc == nil {
		return // channel gone (broken, or setup never completed)
	}
	b.deliverChan(bc, payload)
}

// handleRDMA lands a relayed remote write in the registered region of
// the real local NIC that minted the handle (handles travel to remote
// writers through setup messages, so an arriving handle is always one
// of ours).
func (b *UDPBridge) handleRDMA(frame []byte) {
	if len(frame) < 16 {
		return
	}
	h := Handle(binary.LittleEndian.Uint64(frame))
	off := int(binary.LittleEndian.Uint64(frame[8:]))
	payload := frame[16:]
	b.fabric.mu.Lock()
	var target *NIC
	for _, n := range b.fabric.nics {
		if n.fw != nil {
			continue
		}
		if _, ok := n.region(h); ok {
			target = n
			break
		}
	}
	b.fabric.mu.Unlock()
	if target == nil {
		return // region deregistered; protection faults are silent on the wire
	}
	_ = target.deliverRDMA(h, off, payload)
}

// handleBreak breaks the local proxy VI (and through it the real VI)
// for a channel the remote side reported dead.
func (b *UDPBridge) handleBreak(frame []byte) {
	if len(frame) < 10 {
		return
	}
	ch := binary.LittleEndian.Uint64(frame)
	msgLen := int(binary.LittleEndian.Uint16(frame[8:]))
	msg := "peer broke connection"
	if msgLen > 0 && len(frame) >= 10+msgLen {
		msg = string(frame[10 : 10+msgLen])
	}
	b.mu.Lock()
	bc := b.chans[ch]
	delete(b.chans, ch)
	b.mu.Unlock()
	if bc == nil {
		return
	}
	bc.pv.breakConn(fmt.Errorf("%w: %s", ErrBroken, msg))
}

// Close stops the bridge. Proxy NICs stay on the fabric (the fabric's
// own Close tears them down); channels through them break on use.
func (b *UDPBridge) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.done)
	b.pc.Close()
	b.wg.Wait()
}
