package via

import (
	"bytes"
	"strings"
	"testing"

	"press/metrics"
)

// metricsPair builds two connected reliable VIs on a fabric carrying a
// live metrics registry.
func metricsPair(t *testing.T, r *metrics.Registry) (*NIC, *NIC, *VI, *VI) {
	t.Helper()
	f := NewFabric(WithMetrics(r))
	t.Cleanup(f.Close)
	na, err := f.CreateNIC("nodeA", WithWorkDepth(128))
	if err != nil {
		t.Fatal(err)
	}
	nb, err := f.CreateNIC("nodeB")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := nb.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	vb, err := nb.CreateVI(ReliableDelivery, 16)
	if err != nil {
		t.Fatal(err)
	}
	va, err := na.CreateVI(ReliableDelivery, 16)
	if err != nil {
		t.Fatal(err)
	}
	acceptErr := make(chan error, 1)
	go func() {
		_, err := ln.Accept(vb)
		acceptErr <- err
	}()
	if err := va.Connect("nodeB", "svc"); err != nil {
		t.Fatal(err)
	}
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}
	return na, nb, va, vb
}

func TestNICMetricsRegistered(t *testing.T) {
	r := metrics.NewRegistry()
	na, nb, va, vb := metricsPair(t, r)
	msg := []byte("instrumented send")
	got := sendRecv(t, na, nb, va, vb, msg)
	if !bytes.Equal(got, msg) {
		t.Fatalf("payload mismatch: %q", got)
	}

	s := r.Snapshot()
	if n := s.Counters[metrics.Key("via_sends_posted_total", "nic=nodeA")]; n != 1 {
		t.Errorf("sends posted counter = %d, want 1", n)
	}
	if n := s.Counters[metrics.Key("via_recvs_posted_total", "nic=nodeB")]; n != 1 {
		t.Errorf("recvs posted counter = %d, want 1", n)
	}
	if n := s.Counters[metrics.Key("via_sent_bytes", "nic=nodeA")]; n != int64(len(msg)) {
		t.Errorf("sent bytes counter = %d, want %d", n, len(msg))
	}
	h := s.Histograms[metrics.Key("via_send_latency_ns", "nic=nodeA")]
	if h.Count != 1 {
		t.Errorf("send latency histogram count = %d, want 1", h.Count)
	}
	if _, ok := s.Gauges[metrics.Key("via_workq_depth", "nic=nodeA")]; !ok {
		t.Error("work-queue depth gauge missing")
	}
	// Registry and NIC.Stats must agree: the counters are shared.
	if st := na.Stats(); st.SendsPosted != 1 || st.BytesSent != int64(len(msg)) {
		t.Errorf("NIC.Stats diverges from registry: %+v", st)
	}
}

// TestNICMetricsDisabled: without a registry the NIC keeps its Stats
// counters but records no latency (the clock is never read).
func TestNICMetricsDisabled(t *testing.T) {
	_, na, nb, va, vb := pair(t, ReliableDelivery)
	sendRecv(t, na, nb, va, vb, []byte("x"))
	if na.m.sendLatency != nil || na.m.workDepth != nil {
		t.Error("disabled NIC must not carry latency/depth instruments")
	}
	if st := na.Stats(); st.SendsPosted != 1 || st.SendsComplete != 1 {
		t.Errorf("Stats must still count when metrics are disabled: %+v", st)
	}
}

func TestWithLossOption(t *testing.T) {
	f := NewFabric(WithLoss(1.0), WithSeed(1))
	defer f.Close()
	if f.lossRate != 1.0 {
		t.Errorf("WithLoss did not set loss rate: %v", f.lossRate)
	}
	f2 := NewFabric(WithLoss(0.25))
	defer f2.Close()
	if f2.lossRate != 0.25 {
		t.Errorf("WithLoss did not set loss rate: %v", f2.lossRate)
	}
}

func TestWithWorkDepth(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	n, err := f.CreateNIC("a", WithWorkDepth(7))
	if err != nil {
		t.Fatal(err)
	}
	if cap(n.work) != 7 {
		t.Errorf("work depth = %d, want 7", cap(n.work))
	}
	n2, err := f.CreateNIC("b", WithWorkDepth(0)) // <= 0 keeps the default
	if err != nil {
		t.Fatal(err)
	}
	if cap(n2.work) != defaultWorkDepth {
		t.Errorf("work depth = %d, want default %d", cap(n2.work), defaultWorkDepth)
	}
}

func TestFabricMetricsReport(t *testing.T) {
	r := metrics.NewRegistry()
	na, nb, va, vb := metricsPair(t, r)
	sendRecv(t, na, nb, va, vb, bytes.Repeat([]byte("p"), 2048))
	_, _, _, _ = na, nb, va, vb

	var b strings.Builder
	if err := r.Report(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"via_sends_posted_total{nic=nodeA}", "via_sent_bytes", "2.0 KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Latency values render as durations.
	if !strings.Contains(out, "via_send_latency_ns") {
		t.Errorf("report missing latency family:\n%s", out)
	}
}
