package experiments

import (
	"testing"

	"press/stats"
)

// Small request volumes keep the sweep tests fast while preserving the
// qualitative orderings the paper reports.
func fastOptions() Options {
	return Options{Requests: 40000, Seed: 1}
}

func TestFigure1ShowsLargeCommShare(t *testing.T) {
	rows, err := Figure1(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CommFraction < 0.40 || r.CommFraction > 0.85 {
			t.Errorf("%s: comm fraction %.2f outside the Figure 1 band", r.Trace, r.CommFraction)
		}
		if r.CPUOnlyFraction <= 0 || r.CPUOnlyFraction >= r.CommFraction {
			t.Errorf("%s: CPU-only fraction %.2f vs %.2f", r.Trace, r.CPUOnlyFraction, r.CommFraction)
		}
	}
}

func TestFigure3Orderings(t *testing.T) {
	rows, err := Figure3(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.VIACLAN <= r.TCPCLAN {
			t.Errorf("%s: VIA %.0f <= TCP/cLAN %.0f", r.Trace, r.VIACLAN, r.TCPCLAN)
		}
		if bw := r.BandwidthEffect(); bw < -0.02 || bw > 0.15 {
			t.Errorf("%s: bandwidth effect %.1f%% outside the small band", r.Trace, bw*100)
		}
		if ov := r.OverheadEffect(); ov < 0.05 || ov > 0.35 {
			t.Errorf("%s: overhead effect %.1f%% outside the Figure 3 band", r.Trace, ov*100)
		}
	}
}

func TestFigure4PBWins(t *testing.T) {
	rows, err := Figure4(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		pb := r.Throughput["PB"]
		if pb <= 0 {
			t.Fatalf("%s: no PB result", r.Trace)
		}
		if r.Throughput["L1"] >= pb {
			t.Errorf("%s: L1 %.0f >= PB %.0f", r.Trace, r.Throughput["L1"], pb)
		}
		if r.Throughput["L16"] > pb*1.02 {
			t.Errorf("%s: L16 %.0f above PB %.0f", r.Trace, r.Throughput["L16"], pb)
		}
		if r.Throughput["NLB"] >= pb {
			t.Errorf("%s: NLB %.0f >= PB %.0f", r.Trace, r.Throughput["NLB"], pb)
		}
	}
}

func TestTable2LoadMessageOrdering(t *testing.T) {
	entries, err := Table2(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("entries = %d", len(entries))
	}
	byName := map[string]Table2Entry{}
	for _, e := range entries {
		byName[e.Strategy] = e
	}
	l1 := byName["L1"].Msgs.Count[0]
	l4 := byName["L4"].Msgs.Count[0]
	l16 := byName["L16"].Msgs.Count[0]
	if !(l1 > 4*l4 && l4 > 4*l16 && l16 > 0) {
		t.Errorf("load message counts L1=%d L4=%d L16=%d lack Table 2's steep ordering", l1, l4, l16)
	}
	if byName["PB"].Msgs.Count[0] != 0 || byName["NLB"].Msgs.Count[0] != 0 {
		t.Error("PB/NLB sent load messages")
	}
}

func TestFigure5Shape(t *testing.T) {
	rows, err := Figure5(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// V1..V3 are small; V4 and V5 carry the gains; V5 is the best.
		if r.Gain[4] < r.Gain[3]-0.01 {
			t.Errorf("%s: V5 gain %.3f below V4 %.3f", r.Trace, r.Gain[4], r.Gain[3])
		}
		if r.Gain[4] < 0.02 || r.Gain[4] > 0.20 {
			t.Errorf("%s: V5 gain %.3f outside Figure 5 band", r.Trace, r.Gain[4])
		}
		for i := 0; i < 3; i++ {
			if r.Gain[i] > r.Gain[4] {
				t.Errorf("%s: V%d gain %.3f exceeds V5 %.3f", r.Trace, i+1, r.Gain[i], r.Gain[4])
			}
		}
	}
}

func TestTable4FileMessageDoubling(t *testing.T) {
	entries, err := Table4(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table4Entry{}
	for _, e := range entries {
		byName[e.Version] = e
	}
	v2files := byName["V2"].Msgs.Count[4]
	v3files := byName["V3"].Msgs.Count[4]
	if ratio := float64(v3files) / float64(v2files); ratio < 1.3 || ratio > 2.2 {
		t.Errorf("V3/V2 file message ratio = %.2f, want Table 4's near-doubling", ratio)
	}
}

func TestFigure6Decomposition(t *testing.T) {
	rows, err := Figure6(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		base, low, rmw, zc := r.Contributions()
		sum := base + low + rmw + zc
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: contributions sum to %.3f", r.Trace, sum)
		}
		if low <= 0 {
			t.Errorf("%s: low-overhead contribution %.3f not positive", r.Trace, low)
		}
		if total := r.TotalGain(); total < 0.08 || total > 0.40 {
			t.Errorf("%s: total user-level gain %.1f%% outside band", r.Trace, total*100)
		}
	}
}

func TestAblationLoadThresholdMonotoneTail(t *testing.T) {
	pts, err := AblationLoadThreshold(fastOptions(), []int{1, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Raising the threshold reduces message pressure: L32 > L1.
	if pts[2].Throughput <= pts[0].Throughput {
		t.Errorf("L32 %.0f not above L1 %.0f", pts[2].Throughput, pts[0].Throughput)
	}
}

func TestAblationLoadRMWHelpsL1(t *testing.T) {
	reg, rmw, err := AblationLoadRMW(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rmw <= reg {
		t.Errorf("RMW load broadcasts (%.0f) did not improve on regular (%.0f)", rmw, reg)
	}
}

func TestAblationRMWSingleMessage(t *testing.T) {
	v2, v3, v3s, err := AblationRMWSingleMessage(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The hypothetical single-message RMW must beat real V3 (which pays
	// for the metadata message) and V2 (which pays receiver interrupts).
	if v3s <= v3 {
		t.Errorf("single-message RMW %.0f not above V3 %.0f", v3s, v3)
	}
	if v3s <= v2 {
		t.Errorf("single-message RMW %.0f not above V2 %.0f", v3s, v2)
	}
}

func TestAblationSweepsRun(t *testing.T) {
	o := fastOptions()
	if _, err := AblationFlowBatch(o, []int{2, 8}); err != nil {
		t.Error(err)
	}
	if _, err := AblationOverloadThreshold(o, []int{40, 120}); err != nil {
		t.Error(err)
	}
	if _, err := AblationLargeFileCutoff(o, []int64{64 << 10, 1 << 20}); err != nil {
		t.Error(err)
	}
	if _, err := AblationSegmentSize(o, []int64{4 << 10, 64 << 10}); err != nil {
		t.Error(err)
	}
}

func TestValidationModelUpperBounds(t *testing.T) {
	rows, err := Validation(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The model ignores distribution, dissemination, and flow-control
		// costs, so it sits near or above the simulator — though its
		// analytic forwarding fraction (R = 15%) can exceed the
		// simulator's steady state, pulling the bound slightly below 1.
		// The paper's own validation slack is 2-25%.
		if r.Ratio < 0.85 || r.Ratio > 1.9 {
			t.Errorf("%s/%s: model/sim ratio %.2f outside validation band (sim %.0f, model %.0f)",
				r.Trace, r.System, r.Ratio, r.Simulated, r.Modeled)
		}
	}
}

func TestNodeSweepGainGrows(t *testing.T) {
	pts, err := NodeSweep(fastOptions(), []int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.VIA <= p.TCP {
			t.Errorf("N=%d: VIA %.0f not above TCP %.0f", p.Nodes, p.VIA, p.TCP)
		}
		if p.ModelGain < 0 {
			t.Errorf("N=%d: negative model gain %v", p.Nodes, p.ModelGain)
		}
	}
	// The user-level gain should be larger on bigger clusters (more
	// forwarding) - compare the ends of the sweep.
	if pts[3].Gain <= pts[0].Gain {
		t.Errorf("gain did not grow with node count: N=2 %.3f vs N=16 %.3f",
			pts[0].Gain, pts[3].Gain)
	}
}

func TestAblationCacheSizeMonotone(t *testing.T) {
	// Larger caches keep more of the working set in cluster memory:
	// throughput must not degrade as the cache grows.
	pts, err := AblationCacheSize(fastOptions(), []int64{8 << 20, 32 << 20, 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Throughput < pts[i-1].Throughput*0.97 {
			t.Errorf("throughput fell from %.0f to %.0f as cache grew to %s",
				pts[i-1].Throughput, pts[i].Throughput, stats.FormatBytes(int64(pts[i].Param)))
		}
	}
}

func TestLocalityBenefit(t *testing.T) {
	// With per-node caches far below the working set, cache aggregation
	// must beat the content-oblivious baseline on both hit rate and
	// throughput; with huge caches the two converge (everything local).
	o := fastOptions()
	pts, err := LocalityBenefit(o, []int64{24 << 20, 512 << 20})
	if err != nil {
		t.Fatal(err)
	}
	small, big := pts[0], pts[1]
	if small.PRESSHit <= small.ObliviousHit {
		t.Errorf("small cache: PRESS hit %.3f not above oblivious %.3f",
			small.PRESSHit, small.ObliviousHit)
	}
	if small.PRESS <= small.Oblivious {
		t.Errorf("small cache: PRESS %.0f not above oblivious %.0f",
			small.PRESS, small.Oblivious)
	}
	if big.Oblivious < big.PRESS*0.95 {
		t.Errorf("big cache: oblivious %.0f should approach PRESS %.0f (no comm cost)",
			big.Oblivious, big.PRESS)
	}
}

func TestOverheadSweepMonotone(t *testing.T) {
	pts, err := OverheadSweep(fastOptions(), []float64{2, 15, 60, 135, 400})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Throughput > pts[i-1].Throughput*1.01 {
			t.Errorf("throughput rose from %.0f to %.0f as overhead grew to %.0fus",
				pts[i-1].Throughput, pts[i].Throughput, pts[i].OverheadUS)
		}
	}
	// Communication share grows with overhead.
	if pts[len(pts)-1].CommFraction <= pts[0].CommFraction {
		t.Errorf("comm share did not grow: %.2f -> %.2f",
			pts[0].CommFraction, pts[len(pts)-1].CommFraction)
	}
	// The span should be substantial: user-level vs heavy kernel costs.
	if gain := pts[0].Throughput/pts[len(pts)-1].Throughput - 1; gain < 0.15 {
		t.Errorf("2us vs 400us overhead gain only %.1f%%", gain*100)
	}
}

func TestBandwidthSweepKnee(t *testing.T) {
	pts, err := BandwidthSweep(fastOptions(), []float64{2, 6, 12, 32, 102, 500})
	if err != nil {
		t.Fatal(err)
	}
	// Saturated wire at 2 MB/s: throughput well below the plateau.
	first, last := pts[0], pts[len(pts)-1]
	if first.Throughput > last.Throughput*0.8 {
		t.Errorf("no knee: %.0f at 2MB/s vs %.0f at 500MB/s", first.Throughput, last.Throughput)
	}
	// Plateau: 102 -> 500 MB/s gains little (the paper's finding).
	p102 := pts[4]
	if last.Throughput > p102.Throughput*1.05 {
		t.Errorf("no plateau: %.0f at 102MB/s vs %.0f at 500MB/s", p102.Throughput, last.Throughput)
	}
	// Latency falls as the wire speeds up.
	if last.LatencyMean > first.LatencyMean {
		t.Errorf("latency rose with bandwidth: %.4f -> %.4f", first.LatencyMean, last.LatencyMean)
	}
}
