package experiments

import (
	"press/cluster"
	"press/core"
	"press/netmodel"
)

// DirScalingCell is one (cluster size, strategy) measurement of the
// directory-scaling sweep.
type DirScalingCell struct {
	Strategy   string  `json:"strategy"`
	Throughput float64 `json:"throughput"`
	Requests   int64   `json:"requests"`
	// DirMsgs counts directory-maintenance messages in the measurement
	// window: caching updates plus, under sharding, lookups, replies,
	// and invalidations.
	DirMsgs int64 `json:"dirMsgs"`
	// LoadMsgs counts explicit load messages (threshold broadcasts or
	// gossip digests; zero under pure piggy-backing).
	LoadMsgs int64 `json:"loadMsgs"`
	// DirPerReq is cluster-wide directory messages per completed
	// request: ~O(N) under the replicated broadcast directory, ~O(1)
	// under sharding.
	DirPerReq float64 `json:"dirPerReq"`
	// DirPerNodeReq divides DirPerReq over the nodes that carry it —
	// the per-node directory burden the paper's broadcast design grows
	// linearly and sharding holds flat.
	DirPerNodeReq float64 `json:"dirPerNodeReq"`
}

// DirScalingRow is one cluster size of the sweep.
type DirScalingRow struct {
	Nodes int `json:"nodes"`
	// Cells holds one measurement per strategy, in
	// DirectoryScalingStrategies order.
	Cells []DirScalingCell `json:"cells"`
}

// DirectoryScalingSizes returns the swept cluster sizes. The low end
// sits below the broadcast/sharded crossover so the sweep captures it.
func DirectoryScalingSizes() []int { return []int{4, 8, 16, 32, 64, 128, 256} }

// DirectoryScalingStrategies returns the compared strategies: the
// paper's replicated broadcast directory under piggy-backing, the
// consistent-hash sharded directory, and sharding plus epidemic gossip.
func DirectoryScalingStrategies() []core.Strategy {
	return []core.Strategy{core.PB(), core.Sharded(), core.EpidemicGossip(0, 0)}
}

// DirectoryScaling sweeps cluster size for the three directory regimes
// over one trace (Options.Trace) on VIA/cLAN. Options.Nodes is ignored;
// the sweep runs DirectoryScalingSizes. Runs start from cold caches and
// measure from the first request: directory traffic is maintenance
// traffic, and a prewarmed steady state with no cache churn sends
// almost none, hiding exactly the cost being measured. Under churn
// every caching change broadcasts to N-1 peers in the replicated
// design — total traffic ~O(N²) as the cluster grows — while the
// sharded modes pay one directed update per change and one
// lookup/reply per cold read-cache miss, ~O(N) total. The crossover is
// this sweep's artifact.
func DirectoryScaling(o Options) ([]DirScalingRow, error) {
	o = o.withDefaults()
	sizes := DirectoryScalingSizes()
	strategies := DirectoryScalingStrategies()
	rows := make([]DirScalingRow, len(sizes))
	for i, n := range sizes {
		rows[i] = DirScalingRow{Nodes: n, Cells: make([]DirScalingCell, len(strategies))}
	}
	err := forEachIndex(len(sizes)*len(strategies), func(cell int) error {
		ni, si := cell/len(strategies), cell%len(strategies)
		oo := o
		oo.Nodes = sizes[ni]
		tr, err := loadTrace(o.Trace, oo.Requests)
		if err != nil {
			return err
		}
		r, err := cluster.Run(cluster.Config{
			Nodes:          oo.Nodes,
			Trace:          tr,
			Combo:          netmodel.VIAOverCLAN(),
			Version:        v(0),
			Dissemination:  strategies[si],
			Seed:           oo.Seed,
			NoPrewarm:      true,
			WarmupRequests: -1,
		})
		if err != nil {
			return err
		}
		dir := r.Msgs.Count[core.MsgCaching] + r.Msgs.Count[core.MsgDirLookup] +
			r.Msgs.Count[core.MsgDirReply] + r.Msgs.Count[core.MsgDirInval]
		c := DirScalingCell{
			Strategy:   strategies[si].String(),
			Throughput: r.Throughput,
			Requests:   r.Requests,
			DirMsgs:    dir,
			LoadMsgs:   r.Msgs.Count[core.MsgLoad],
		}
		if r.Requests > 0 {
			c.DirPerReq = float64(dir) / float64(r.Requests)
			c.DirPerNodeReq = c.DirPerReq / float64(sizes[ni])
		}
		rows[ni].Cells[si] = c
		return nil
	})
	return rows, err
}
