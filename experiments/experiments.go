// Package experiments drives the simulated reproductions of the paper's
// experimental section: one function per figure or table, shared by the
// press-sim command and the benchmark harness.
//
// Each function sweeps the relevant dimension (protocol/network
// combination, dissemination strategy, server version) over the four
// Table 1 traces at a configurable request volume. Results carry the raw
// numbers; rendering helpers produce text tables in the paper's layout.
package experiments

import (
	"fmt"
	"sync"

	"press/cluster"
	"press/core"
	"press/netmodel"
	"press/trace"
)

// Options scales the experiments. The zero value reproduces every trace
// at 120k requests on 8 nodes — large enough for steady-state behaviour,
// small enough for CI.
type Options struct {
	// Nodes is the cluster size; default 8 (the paper's cluster).
	Nodes int
	// Requests truncates each trace; 0 means the default 120000, and
	// negative means the full paper-scale trace (up to 3.1M requests).
	Requests int
	// Seed selects the deterministic run; default 1.
	Seed int64
	// Trace restricts single-trace experiments (Tables 2 and 4);
	// default "clarknet".
	Trace string
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 8
	}
	if o.Requests == 0 {
		o.Requests = 120000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Trace == "" {
		o.Trace = "clarknet"
	}
	return o
}

// traceCache memoizes synthesized traces: the four full populations are
// expensive to regenerate for every figure. Entries hold a once-guarded
// synthesis so concurrent figure cells share one generation.
var traceCache sync.Map // key string -> *traceEntry

type traceEntry struct {
	once sync.Once
	tr   *trace.Trace
	err  error
}

func loadTrace(name string, requests int) (*trace.Trace, error) {
	spec, err := trace.SpecByName(name)
	if err != nil {
		return nil, err
	}
	if requests > 0 && requests < spec.NumRequests {
		spec.NumRequests = requests
	}
	key := fmt.Sprintf("%s/%d", spec.Name, spec.NumRequests)
	v, _ := traceCache.LoadOrStore(key, &traceEntry{})
	e := v.(*traceEntry)
	e.once.Do(func() {
		e.tr, e.err = trace.Synthesize(spec)
	})
	return e.tr, e.err
}

func run(o Options, traceName string, combo netmodel.CostModel,
	version netmodel.Version, strategy core.Strategy) (*cluster.Result, error) {
	tr, err := loadTrace(traceName, o.Requests)
	if err != nil {
		return nil, err
	}
	return cluster.Run(cluster.Config{
		Nodes:         o.Nodes,
		Trace:         tr,
		Combo:         combo,
		Version:       version,
		Dissemination: strategy,
		Seed:          o.Seed,
	})
}

// traceNames returns the four paper traces in Table 1 order.
func traceNames() []string {
	names := make([]string, 0, 4)
	for _, s := range trace.Table1Specs() {
		names = append(names, s.Name)
	}
	return names
}

// v returns version Vn.
func v(n int) netmodel.Version { return netmodel.Versions()[n] }

// Fig1Row is one bar pair of Figure 1: the share of time a CPU running
// PRESS over TCP/FE spends on intra-cluster communication.
type Fig1Row struct {
	Trace string
	// CommFraction counts communication CPU plus internal-interface
	// time, the simulator's analogue of the paper's thread-time
	// measurement (communication threads block on the interconnect).
	CommFraction float64
	// CPUOnlyFraction counts pure CPU cycles only.
	CPUOnlyFraction float64
	Throughput      float64
}

// Figure1 reproduces Figure 1: PRESS on TCP/FE, time breakdown per trace.
func Figure1(o Options) ([]Fig1Row, error) {
	o = o.withDefaults()
	names := traceNames()
	rows := make([]Fig1Row, len(names))
	err := forEachIndex(len(names), func(i int) error {
		r, err := run(o, names[i], netmodel.TCPFastEthernet(), v(0), core.PB())
		if err != nil {
			return err
		}
		cpuOnly := 0.0
		if d := r.CPUComm + r.CPUService; d > 0 {
			cpuOnly = float64(r.CPUComm) / float64(d)
		}
		rows[i] = Fig1Row{
			Trace:           names[i],
			CommFraction:    r.CommFraction,
			CPUOnlyFraction: cpuOnly,
			Throughput:      r.Throughput,
		}
		return nil
	})
	return rows, err
}

// Fig3Row is one trace's bar group in Figure 3: throughput per
// protocol/network combination.
type Fig3Row struct {
	Trace   string
	TCPFE   float64
	TCPCLAN float64
	VIACLAN float64
}

// BandwidthEffect returns the TCP/cLAN over TCP/FE gain (the paper
// attributes it to network bandwidth; ~6% on average).
func (r Fig3Row) BandwidthEffect() float64 { return r.TCPCLAN/r.TCPFE - 1 }

// OverheadEffect returns the VIA/cLAN over TCP/cLAN gain (processor
// overhead; 14–17% in the paper).
func (r Fig3Row) OverheadEffect() float64 { return r.VIACLAN/r.TCPCLAN - 1 }

// Figure3 reproduces Figure 3: throughput for the three combinations.
func Figure3(o Options) ([]Fig3Row, error) {
	o = o.withDefaults()
	names := traceNames()
	combos := netmodel.Combos()
	rows := make([]Fig3Row, len(names))
	for i, name := range names {
		rows[i].Trace = name
	}
	var mu sync.Mutex
	err := forEachIndex(len(names)*len(combos), func(cell int) error {
		ti, ci := cell/len(combos), cell%len(combos)
		r, err := run(o, names[ti], combos[ci], v(0), core.PB())
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		switch combos[ci].Name {
		case "TCP/FE":
			rows[ti].TCPFE = r.Throughput
		case "TCP/cLAN":
			rows[ti].TCPCLAN = r.Throughput
		case "VIA/cLAN":
			rows[ti].VIACLAN = r.Throughput
		}
		return nil
	})
	return rows, err
}

// Fig4Row is one trace's bar group in Figure 4: throughput per
// load-dissemination strategy over VIA/cLAN.
type Fig4Row struct {
	Trace      string
	Throughput map[string]float64 // keyed by strategy label (PB, L16, ...)
}

// Figure4 reproduces Figure 4: the paper's five dissemination
// strategies. The post-paper directory modes (SHARD, GOSSIP) are swept
// separately by DirectoryScaling.
func Figure4(o Options) ([]Fig4Row, error) {
	o = o.withDefaults()
	names := traceNames()
	strategies := core.PaperStrategies()
	rows := make([]Fig4Row, len(names))
	var mu sync.Mutex
	for i, name := range names {
		rows[i] = Fig4Row{Trace: name, Throughput: map[string]float64{}}
	}
	err := forEachIndex(len(names)*len(strategies), func(cell int) error {
		ti, si := cell/len(strategies), cell%len(strategies)
		r, err := run(o, names[ti], netmodel.VIAOverCLAN(), v(0), strategies[si])
		if err != nil {
			return err
		}
		mu.Lock()
		rows[ti].Throughput[strategies[si].String()] = r.Throughput
		mu.Unlock()
		return nil
	})
	return rows, err
}

// Table2Entry is one version block of Table 2: per-type message counts
// and volumes for a dissemination strategy.
type Table2Entry struct {
	Strategy string
	Msgs     core.MsgStats
}

// Table2 reproduces Table 2 for one trace (Options.Trace).
func Table2(o Options) ([]Table2Entry, error) {
	o = o.withDefaults()
	var out []Table2Entry
	// Table 2 lists NLB, L1, L4, L16, PB (top to bottom).
	order := []core.Strategy{core.NLB(), core.LThreshold(1), core.LThreshold(4), core.LThreshold(16), core.PB()}
	for _, st := range order {
		r, err := run(o, o.Trace, netmodel.VIAOverCLAN(), v(0), st)
		if err != nil {
			return nil, err
		}
		out = append(out, Table2Entry{Strategy: st.String(), Msgs: r.Msgs})
	}
	return out, nil
}

// Fig5Row is one trace's bar group in Figure 5: throughput increase of
// V1..V5 over V0.
type Fig5Row struct {
	Trace string
	// Gain[i] is the relative throughput increase of version i+1.
	Gain [5]float64
}

// Figure5 reproduces Figure 5: the RMW and zero-copy versions.
func Figure5(o Options) ([]Fig5Row, error) {
	o = o.withDefaults()
	names := traceNames()
	rows := make([]Fig5Row, len(names))
	thr := make([][6]float64, len(names))
	for i, name := range names {
		rows[i].Trace = name
	}
	err := forEachIndex(len(names)*6, func(cell int) error {
		ti, vi := cell/6, cell%6
		r, err := run(o, names[ti], netmodel.VIAOverCLAN(), v(vi), core.PB())
		if err != nil {
			return err
		}
		thr[ti][vi] = r.Throughput
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ti := range rows {
		for vi := 1; vi <= 5; vi++ {
			rows[ti].Gain[vi-1] = thr[ti][vi]/thr[ti][0] - 1
		}
	}
	return rows, nil
}

// Table4Entry is one version block of Table 4: per-type message counts
// and volumes for V1..V5.
type Table4Entry struct {
	Version string
	Msgs    core.MsgStats
}

// Table4 reproduces Table 4 for one trace (Options.Trace).
func Table4(o Options) ([]Table4Entry, error) {
	o = o.withDefaults()
	var out []Table4Entry
	for i := 1; i <= 5; i++ {
		r, err := run(o, o.Trace, netmodel.VIAOverCLAN(), v(i), core.PB())
		if err != nil {
			return nil, err
		}
		out = append(out, Table4Entry{Version: v(i).Name, Msgs: r.Msgs})
	}
	return out, nil
}

// Fig6Row is one trace's stacked bar in Figure 6: the TCP/cLAN baseline
// plus the contributions of low overhead, remote memory writes, and
// zero-copy, each normalized to the full user-level throughput.
type Fig6Row struct {
	Trace string
	// Absolute throughputs of the four configurations.
	TCPCLAN float64 // baseline
	V0      float64 // + low overhead
	V4      float64 // + remote memory writes
	V5      float64 // + zero-copy
}

// Contributions returns the stacked normalized segments (base,
// low-overhead, RMW, zero-copy), summing to 1, as plotted in Figure 6.
// The paper credits V4's gains to remote memory writes and V5's to
// zero-copy (Section 3.4).
func (r Fig6Row) Contributions() (base, lowOverhead, rmw, zeroCopy float64) {
	if r.V5 == 0 {
		return 0, 0, 0, 0
	}
	return r.TCPCLAN / r.V5, (r.V0 - r.TCPCLAN) / r.V5, (r.V4 - r.V0) / r.V5, (r.V5 - r.V4) / r.V5
}

// TotalGain returns the full user-level communication gain over
// TCP/cLAN (as much as 29%, averaging 26%, in the paper).
func (r Fig6Row) TotalGain() float64 { return r.V5/r.TCPCLAN - 1 }

// Figure6 reproduces Figure 6: summary of contributions.
func Figure6(o Options) ([]Fig6Row, error) {
	o = o.withDefaults()
	names := traceNames()
	rows := make([]Fig6Row, len(names))
	for i, name := range names {
		rows[i].Trace = name
	}
	var mu sync.Mutex
	err := forEachIndex(len(names)*4, func(cell int) error {
		ti, ci := cell/4, cell%4
		var r *cluster.Result
		var err error
		switch ci {
		case 0:
			r, err = run(o, names[ti], netmodel.TCPOverCLAN(), v(0), core.PB())
		case 1:
			r, err = run(o, names[ti], netmodel.VIAOverCLAN(), v(0), core.PB())
		case 2:
			r, err = run(o, names[ti], netmodel.VIAOverCLAN(), v(4), core.PB())
		case 3:
			r, err = run(o, names[ti], netmodel.VIAOverCLAN(), v(5), core.PB())
		}
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		switch ci {
		case 0:
			rows[ti].TCPCLAN = r.Throughput
		case 1:
			rows[ti].V0 = r.Throughput
		case 2:
			rows[ti].V4 = r.Throughput
		case 3:
			rows[ti].V5 = r.Throughput
		}
		return nil
	})
	return rows, err
}
