package experiments

import (
	"press/cluster"
	"press/core"
	"press/netmodel"
)

// The ablations quantify the design choices DESIGN.md calls out; each
// returns (parameter value, throughput) pairs for one trace
// (Options.Trace) on VIA/cLAN.

// SweepPoint is one point of an ablation sweep.
type SweepPoint struct {
	Param      float64
	Throughput float64
}

func (o Options) runWith(mutate func(*cluster.Config)) (*cluster.Result, error) {
	tr, err := loadTrace(o.Trace, o.Requests)
	if err != nil {
		return nil, err
	}
	cfg := cluster.Config{
		Nodes:         o.Nodes,
		Trace:         tr,
		Combo:         netmodel.VIAOverCLAN(),
		Dissemination: core.PB(),
		Seed:          o.Seed,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return cluster.Run(cfg)
}

// AblationLoadThreshold sweeps the broadcast threshold L continuously
// (Figure 4 samples only 1, 4, 16).
func AblationLoadThreshold(o Options, thresholds []int) ([]SweepPoint, error) {
	o = o.withDefaults()
	var out []SweepPoint
	for _, l := range thresholds {
		r, err := o.runWith(func(c *cluster.Config) {
			c.Dissemination = core.LThreshold(l)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Param: float64(l), Throughput: r.Throughput})
	}
	return out, nil
}

// AblationLoadRMW compares L1 with regular vs remote-memory-write load
// broadcasts — the paper notes RMW "improves the performance of L1
// significantly". It returns the two throughputs.
func AblationLoadRMW(o Options) (regular, rmw float64, err error) {
	o = o.withDefaults()
	r1, err := o.runWith(func(c *cluster.Config) {
		c.Dissemination = core.LThreshold(1)
	})
	if err != nil {
		return 0, 0, err
	}
	r2, err := o.runWith(func(c *cluster.Config) {
		c.Dissemination = core.LThreshold(1)
		c.LoadViaRMW = true
	})
	if err != nil {
		return 0, 0, err
	}
	return r1.Throughput, r2.Throughput, nil
}

// AblationFlowBatch sweeps the flow-control credit batch size.
func AblationFlowBatch(o Options, batches []int) ([]SweepPoint, error) {
	o = o.withDefaults()
	var out []SweepPoint
	for _, b := range batches {
		r, err := o.runWith(func(c *cluster.Config) {
			c.FlowBatch = b
			if c.FlowWindow < 2*b {
				c.FlowWindow = 2 * b
			}
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Param: float64(b), Throughput: r.Throughput})
	}
	return out, nil
}

// AblationOverloadThreshold sweeps T around the paper's 80.
func AblationOverloadThreshold(o Options, ts []int) ([]SweepPoint, error) {
	o = o.withDefaults()
	var out []SweepPoint
	for _, t := range ts {
		r, err := o.runWith(func(c *cluster.Config) {
			p := core.DefaultPolicy()
			p.OverloadThreshold = t
			c.Policy = p
			// Keep client pressure proportional so T remains the spike
			// boundary rather than the mean.
			c.Concurrency = o.Nodes * t / 2
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Param: float64(t), Throughput: r.Throughput})
	}
	return out, nil
}

// AblationLargeFileCutoff sweeps the always-service-locally size.
func AblationLargeFileCutoff(o Options, cutoffs []int64) ([]SweepPoint, error) {
	o = o.withDefaults()
	var out []SweepPoint
	for _, cut := range cutoffs {
		r, err := o.runWith(func(c *cluster.Config) {
			p := core.DefaultPolicy()
			p.LargeFileBytes = cut
			c.Policy = p
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Param: float64(cut), Throughput: r.Throughput})
	}
	return out, nil
}

// AblationSegmentSize sweeps the file-message segment size.
func AblationSegmentSize(o Options, segments []int64) ([]SweepPoint, error) {
	o = o.withDefaults()
	var out []SweepPoint
	for _, seg := range segments {
		r, err := o.runWith(func(c *cluster.Config) {
			c.FileSegmentBytes = seg
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Param: float64(seg), Throughput: r.Throughput})
	}
	return out, nil
}

// AblationRMWSingleMessage asks what V3 would gain if the RMW metadata
// message were free (a hypothetical single-message RMW transfer),
// isolating the two-messages-per-file cost the paper blames for V3's
// flat result. It returns V2, V3, and the hypothetical V3 throughput.
func AblationRMWSingleMessage(o Options) (v2, v3, v3SingleMsg float64, err error) {
	o = o.withDefaults()
	r2, err := o.runWith(func(c *cluster.Config) { c.Version = v(2) })
	if err != nil {
		return 0, 0, 0, err
	}
	r3, err := o.runWith(func(c *cluster.Config) { c.Version = v(3) })
	if err != nil {
		return 0, 0, 0, err
	}
	r3s, err := o.runWith(func(c *cluster.Config) {
		c.Version = v(3)
		c.RMWSingleMessage = true
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return r2.Throughput, r3.Throughput, r3s.Throughput, nil
}

// AblationCacheSize sweeps the per-node cache capacity, relating
// throughput to the working-set-vs-memory balance the paper's
// conclusions hinge on ("whether such high gains will ever be achieved
// depends on working sets growing faster than memories").
func AblationCacheSize(o Options, sizes []int64) ([]SweepPoint, error) {
	o = o.withDefaults()
	var out []SweepPoint
	for _, size := range sizes {
		r, err := o.runWith(func(c *cluster.Config) {
			c.CacheBytes = size
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Param: float64(size), Throughput: r.Throughput})
	}
	return out, nil
}

// LocalityBenefit compares PRESS against a content-oblivious baseline
// across cache sizes: the smaller the per-node cache relative to the
// working set, the more cache aggregation wins — the observation
// locality-conscious servers are built on (Sections 1-2).
type LocalityPoint struct {
	CacheBytes   int64
	Oblivious    float64 // content-oblivious throughput
	PRESS        float64 // locality-conscious throughput
	ObliviousHit float64
	PRESSHit     float64
}

// LocalityBenefit sweeps the per-node cache for both server classes.
func LocalityBenefit(o Options, sizes []int64) ([]LocalityPoint, error) {
	o = o.withDefaults()
	var out []LocalityPoint
	for _, size := range sizes {
		obl, err := o.runWith(func(c *cluster.Config) {
			c.CacheBytes = size
			c.ContentOblivious = true
		})
		if err != nil {
			return nil, err
		}
		press, err := o.runWith(func(c *cluster.Config) {
			c.CacheBytes = size
		})
		if err != nil {
			return nil, err
		}
		out = append(out, LocalityPoint{
			CacheBytes:   size,
			Oblivious:    obl.Throughput,
			PRESS:        press.Throughput,
			ObliviousHit: obl.HitRate,
			PRESSHit:     press.HitRate,
		})
	}
	return out, nil
}
