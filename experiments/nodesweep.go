package experiments

import (
	"press/core"
	"press/model"
	"press/netmodel"
	"press/trace"
)

// NodeSweepPoint compares simulator and model at one cluster size: the
// user-level communication gain (VIA over TCP/cLAN) as the cluster
// grows — the experimental cross-check of the model's Figure 8 trend.
type NodeSweepPoint struct {
	Nodes     int
	TCP       float64 // simulated TCP/cLAN throughput
	VIA       float64 // simulated VIA/cLAN throughput
	Gain      float64 // simulated VIA/TCP - 1
	ModelGain float64 // analytical gain at the same size
}

// NodeSweep runs the simulator and model across cluster sizes for one
// trace (Options.Trace). The paper's model predicts gains that rise
// with node count and level off; the simulator should follow.
func NodeSweep(o Options, nodes []int) ([]NodeSweepPoint, error) {
	o = o.withDefaults()
	spec, err := trace.SpecByName(o.Trace)
	if err != nil {
		return nil, err
	}
	var out []NodeSweepPoint
	for _, n := range nodes {
		oo := o
		oo.Nodes = n
		tcp, err := run(oo, o.Trace, netmodel.TCPOverCLAN(), v(0), core.PB())
		if err != nil {
			return nil, err
		}
		via, err := run(oo, o.Trace, netmodel.VIAOverCLAN(), v(0), core.PB())
		if err != nil {
			return nil, err
		}
		params := model.DefaultParams(n, 0.9, spec.AvgReqKB)
		params.FilesOverride = spec.NumFiles
		mg, err := params.Gain(model.SysVIA, model.SysTCP)
		if err != nil {
			return nil, err
		}
		p := NodeSweepPoint{
			Nodes:     n,
			TCP:       tcp.Throughput,
			VIA:       via.Throughput,
			ModelGain: mg,
		}
		if tcp.Throughput > 0 {
			p.Gain = via.Throughput/tcp.Throughput - 1
		}
		out = append(out, p)
	}
	return out, nil
}
