package experiments

import (
	"fmt"

	"press/cluster"
	"press/core"
	"press/netmodel"
	"press/trace"
)

// HotspotRow compares one Zipf-hotspot workload with and without the
// dynamic hot-object replication policy. Both runs start from
// unreplicated caches (one copy per file), so the "off" column shows
// the single-cacher hotspot PRESS's plain locality routing creates and
// the "on" column what popularity-triggered replication recovers.
type HotspotRow struct {
	// Alpha is the Zipf exponent of the request stream; larger
	// concentrates more of the traffic on the head.
	Alpha float64
	// Goodput (req/s) and p99 latency (seconds) without replication.
	ThroughputOff float64
	P99Off        float64
	// The same with hot-object replication enabled.
	ThroughputOn float64
	P99On        float64
	// Replication activity in the measured window of the "on" run.
	ReplicaPushes int64
	ReplicaDrops  int64
}

// Gain is the relative goodput improvement of replication.
func (r HotspotRow) Gain() float64 {
	if r.ThroughputOff == 0 {
		return 0
	}
	return r.ThroughputOn/r.ThroughputOff - 1
}

// Hotspot sweeps Zipf exponents over the Options trace's file
// population and runs each workload twice on VIA/cLAN — hot-object
// replication off, then on. Static head replication (the prewarm's
// ReplicationFraction) is disabled for both runs so the comparison
// isolates the dynamic policy.
func Hotspot(o Options, alphas []float64) ([]HotspotRow, error) {
	o = o.withDefaults()
	spec, err := trace.SpecByName(o.Trace)
	if err != nil {
		return nil, err
	}
	if o.Requests > 0 && o.Requests < spec.NumRequests {
		spec.NumRequests = o.Requests
	}
	rows := make([]HotspotRow, len(alphas))
	err = forEachIndex(len(alphas)*2, func(cell int) error {
		ai, on := cell/2, cell%2 == 1
		hot := spec
		hot.Alpha = alphas[ai]
		hot.Name = fmt.Sprintf("%s-hot%.2g", spec.Name, alphas[ai])
		tr, err := trace.Synthesize(hot)
		if err != nil {
			return err
		}
		r, err := cluster.Run(cluster.Config{
			Nodes:               o.Nodes,
			Trace:               tr,
			Combo:               netmodel.VIAOverCLAN(),
			Version:             v(0),
			Dissemination:       core.PB(),
			Seed:                o.Seed,
			ReplicationFraction: -1,
			Replication:         core.ReplicationConfig{Enabled: on},
		})
		if err != nil {
			return err
		}
		row := &rows[ai]
		row.Alpha = alphas[ai]
		if on {
			row.ThroughputOn = r.Throughput
			row.P99On = r.LatencyP99
			row.ReplicaPushes = r.ReplicaPushes
			row.ReplicaDrops = r.ReplicaDrops
		} else {
			row.ThroughputOff = r.Throughput
			row.P99Off = r.LatencyP99
		}
		return nil
	})
	return rows, err
}

// DefaultHotspotAlphas are the exponents the hotspot experiment sweeps:
// the paper's WWW-typical 0.8, a strong 1.2 skew, and a 1.8 hotspot
// where the head file dominates the stream.
func DefaultHotspotAlphas() []float64 { return []float64{0.8, 1.2, 1.8} }
