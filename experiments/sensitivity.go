package experiments

import (
	"time"

	"press/cluster"
	"press/netmodel"
)

// The sensitivity sweeps extend the paper's study experimentally: where
// Figures 8-13 extrapolate with the queueing model, these run the full
// simulator while scaling one communication parameter — per-message
// processor overhead or wire bandwidth — through and beyond the
// measured systems.

// OverheadPoint is one point of the overhead sweep.
type OverheadPoint struct {
	// OverheadUS is the per-message fixed CPU cost at each end, in
	// microseconds (the VIA/cLAN system measures ~15, TCP ~135).
	OverheadUS float64
	Throughput float64
	// CommFraction is the share of time in intra-cluster communication
	// at this overhead.
	CommFraction float64
}

// OverheadSweep scales the per-message fixed CPU costs of an otherwise
// VIA/cLAN system from user-level (near zero) past kernel-TCP levels.
// Throughput should fall monotonically and the communication share
// rise, putting the Figure 3 systems on one continuous curve.
func OverheadSweep(o Options, overheadsUS []float64) ([]OverheadPoint, error) {
	o = o.withDefaults()
	var out []OverheadPoint
	for _, us := range overheadsUS {
		r, err := o.runWith(func(c *cluster.Config) {
			combo := netmodel.VIAOverCLAN()
			combo.SendFixed = time.Duration(us * float64(time.Microsecond))
			combo.RecvFixed = combo.SendFixed
			c.Combo = combo
		})
		if err != nil {
			return nil, err
		}
		out = append(out, OverheadPoint{
			OverheadUS:   us,
			Throughput:   r.Throughput,
			CommFraction: r.CommFraction,
		})
	}
	return out, nil
}

// BandwidthPoint is one point of the wire-bandwidth sweep.
type BandwidthPoint struct {
	// MBps is the internal wire bandwidth in MBytes/s (Fast Ethernet
	// measures 11.5, TCP-on-cLAN 32, VIA-on-cLAN 102).
	MBps       float64
	Throughput float64
	// LatencyMean is the client-observed mean response time in seconds.
	LatencyMean float64
}

// BandwidthSweep scales the internal wire bandwidth of an otherwise
// VIA/cLAN system. The paper's finding — bandwidth barely matters once
// the wire stops saturating — should appear as a knee at a few MB/s
// followed by a plateau.
func BandwidthSweep(o Options, mbps []float64) ([]BandwidthPoint, error) {
	o = o.withDefaults()
	var out []BandwidthPoint
	for _, bw := range mbps {
		r, err := o.runWith(func(c *cluster.Config) {
			combo := netmodel.VIAOverCLAN()
			combo.WireRate = bw * 1e6
			c.Combo = combo
		})
		if err != nil {
			return nil, err
		}
		out = append(out, BandwidthPoint{
			MBps:        bw,
			Throughput:  r.Throughput,
			LatencyMean: r.LatencyMean,
		})
	}
	return out, nil
}
