package experiments

import (
	"press/core"
	"press/model"
	"press/netmodel"
	"press/trace"
)

// ValidationRow compares the analytical model's throughput bound with
// the simulator's measurement for one trace and system, reproducing the
// validation of Section 4.2 (version 5 within 2–20% of the model,
// TCP/cLAN within 15–25%, model above as an upper bound).
type ValidationRow struct {
	Trace     string
	System    string
	Simulated float64
	Modeled   float64
	// Ratio is Modeled/Simulated; the model ignores distribution and
	// flow-control costs, so it should sit at or above 1.
	Ratio float64
}

// Validation runs the paper's model-validation comparison: version 5
// and TCP/cLAN on 8 nodes, across the four traces.
func Validation(o Options) ([]ValidationRow, error) {
	o = o.withDefaults()
	var rows []ValidationRow
	for _, spec := range trace.Table1Specs() {
		params := model.DefaultParams(o.Nodes, 0.9, spec.AvgReqKB)
		params.FilesOverride = spec.NumFiles

		for _, sys := range []struct {
			label  string
			combo  netmodel.CostModel
			ver    netmodel.Version
			msys   model.System
			future bool
		}{
			{label: "V5", combo: netmodel.VIAOverCLAN(), ver: v(5), msys: model.SysVIARMWZeroCopy},
			{label: "TCP/cLAN", combo: netmodel.TCPOverCLAN(), ver: v(0), msys: model.SysTCP},
		} {
			r, err := run(o, spec.Name, sys.combo, sys.ver, core.PB())
			if err != nil {
				return nil, err
			}
			sol, err := params.Solve(sys.msys)
			if err != nil {
				return nil, err
			}
			row := ValidationRow{
				Trace:     spec.Name,
				System:    sys.label,
				Simulated: r.Throughput,
				Modeled:   sol.Throughput,
			}
			if row.Simulated > 0 {
				row.Ratio = row.Modeled / row.Simulated
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
