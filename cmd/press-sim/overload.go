package main

import (
	"context"
	"fmt"
	"time"

	"press/cliflag"
	"press/core"
	"press/loadgen"
	"press/netmodel"
	"press/server"
	"press/stats"
	"press/trace"
)

// overloadMaxRequests caps the synthesized trace and the closed-loop
// calibration burst: like -chaos, -overload drives a real cluster over
// loopback HTTP, so paper-scale request counts would run for minutes.
const overloadMaxRequests = 4000

// overloadRateSteps are the offered-rate multipliers of the calibrated
// saturation throughput. The interesting region is the knee: below 1x
// goodput tracks offered load, past it a controlled cluster holds
// goodput near saturation and sheds the excess promptly.
var overloadRateSteps = []float64{0.5, 1.0, 1.5, 2.0, 3.0}

// overloadRun starts a real VIA cluster with overload control enabled
// and ramps an open-loop Poisson arrival process past its saturation
// point, one step per multiplier in overloadRateSteps. Each step
// reports client-side goodput and latency quantiles plus the cluster's
// own shed/expired/goodput deltas, exposing the goodput-vs-offered-load
// knee. With dissemination "all" the ramp repeats for every strategy,
// showing how much offered load each one absorbs before shedding.
func overloadRun(traceName string, requests, nodes int, seed int64, version, dissem string,
	stepDur, deadline time.Duration) error {
	if nodes < 2 {
		return fmt.Errorf("overload needs at least 2 nodes")
	}
	strategies, err := cliflag.DisseminationList(dissem)
	if err != nil {
		return err
	}
	spec, err := trace.SpecByName(traceName)
	if err != nil {
		return err
	}
	if requests <= 0 || requests > overloadMaxRequests {
		requests = overloadMaxRequests
	}
	if requests < spec.NumRequests {
		spec.NumRequests = requests
	}
	tr, err := trace.Synthesize(spec)
	if err != nil {
		return err
	}
	ver, err := netmodel.VersionByName(version)
	if err != nil {
		return err
	}

	fmt.Printf("overload run: %s, %d-node VIA cluster on loopback, deadline %v, %v per step\n",
		tr.Name, nodes, deadline, stepDur)
	for _, strategy := range strategies {
		if err := overloadRamp(tr, nodes, seed, ver, strategy, stepDur, deadline); err != nil {
			return err
		}
	}
	return nil
}

// overloadRamp runs the calibration burst and the rate ramp against one
// cluster. The cluster is torn down between strategies so each ramp
// starts from cold caches and a fresh saturation estimate.
func overloadRamp(tr *trace.Trace, nodes int, seed int64, ver netmodel.Version,
	strategy core.Strategy, stepDur, deadline time.Duration) error {
	cl, err := server.Start(server.Config{
		Nodes:         nodes,
		Trace:         tr,
		Transport:     server.TransportVIA,
		Version:       ver,
		Dissemination: strategy,
		// Small caches and a real (simulated) disk penalty give the
		// cluster a saturation point the generator can actually reach
		// over loopback.
		CacheBytes: 1 << 20,
		DiskDelay:  2 * time.Millisecond,
		Overload: server.OverloadConfig{
			Enabled:        true,
			RequestTimeout: deadline,
			// Queues sized to the deadline, not to memory: a deep accept
			// queue admits requests that are doomed to expire. The CoDel
			// delay target sheds on sustained queue delay even when the
			// occupancy bound alone would admit seconds of backlog.
			AcceptQueue:      64,
			DiskQueue:        32,
			QueueDelayTarget: deadline / 2,
		},
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	targets := make([]string, nodes)
	for i, a := range cl.Addrs() {
		targets[i] = "http://" + a
	}
	ctx := context.Background()

	// Closed-loop calibration: as-fast-as-possible clients measure the
	// cluster's saturation throughput (and warm its caches) so the ramp
	// multipliers mean the same thing on any machine.
	cal, err := loadgen.Run(ctx, loadgen.Config{
		Targets:     targets,
		Trace:       tr,
		Concurrency: 4 * nodes,
		Requests:    len(tr.Requests),
		Seed:        seed,
		Timeout:     10 * time.Second,
	})
	if err != nil {
		return err
	}
	saturation := cal.Throughput
	if saturation < 100 {
		saturation = 100 // floor: keep the ramp meaningful on a degenerate run
	}
	fmt.Printf("\ndissemination %s: saturation ~%.0f req/s (closed-loop calibration, %d requests)\n",
		strategy, saturation, cal.Requests)

	t := stats.NewTable("Offered", "req/s", "Issued", "Goodput/s", "p50 ms", "p99 ms",
		"Shed", "Timeout", "Errs", "Srv shed", "Expired")
	before := cl.Stats()
	for i, mult := range overloadRateSteps {
		rate := mult * saturation
		res, err := loadgen.Run(ctx, loadgen.Config{
			Targets:  targets,
			Trace:    tr,
			Rate:     rate,
			Duration: stepDur,
			Seed:     seed + int64(i) + 1,
			// Generous client timeout: overload control answers promptly
			// (503 or within-deadline data), so timeouts here mean the
			// cluster lost control of its queues.
			Timeout: 4 * deadline,
		})
		if err != nil {
			return err
		}
		after := cl.Stats()
		goodput := float64(res.Requests-res.Errors) / res.Elapsed.Seconds()
		t.AddRowf(fmt.Sprintf("%.1fx", mult), fmt.Sprintf("%.0f", rate), res.Requests,
			fmt.Sprintf("%.0f", goodput),
			fmt.Sprintf("%.1f", res.LatencyP50*1e3), fmt.Sprintf("%.1f", res.LatencyP99*1e3),
			res.ErrShed, res.ErrTimeout, res.Errors,
			after.Nodes.Shed-before.Nodes.Shed,
			after.Nodes.DeadlineExpired-before.Nodes.DeadlineExpired)
		before = after
	}
	fmt.Print(t)
	return nil
}
