package main

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"press/cliflag"
	"press/core"
	"press/loadgen"
	"press/metrics"
	"press/netmodel"
	"press/server"
	"press/stats"
	"press/telemetry"
	"press/trace"
)

// overloadMaxRequests caps the synthesized trace and the closed-loop
// calibration burst: like -chaos, -overload drives a real cluster over
// loopback HTTP, so paper-scale request counts would run for minutes.
const overloadMaxRequests = 4000

// overloadRateSteps are the offered-rate multipliers of the calibrated
// saturation throughput. The interesting region is the knee: below 1x
// goodput tracks offered load, past it a controlled cluster holds
// goodput near saturation and sheds the excess promptly.
var overloadRateSteps = []float64{0.5, 1.0, 1.5, 2.0, 3.0}

// overloadShedTrigger is the cluster-wide shed rate (sheds/s per
// sampling window) that fires the flight recorder during a ramp. At the
// knee the controlled cluster sheds hundreds per second, so crossing 50
// reliably marks the first real shed burst while ignoring stragglers.
const overloadShedTrigger = 50

// overloadRun starts a real VIA cluster with overload control enabled
// and ramps an open-loop Poisson arrival process past its saturation
// point, one step per multiplier in overloadRateSteps. Each step
// reports client-side goodput and latency quantiles plus the cluster's
// own shed/expired/goodput deltas, exposing the goodput-vs-offered-load
// knee. With dissemination "all" the ramp repeats for every strategy,
// showing how much offered load each one absorbs before shedding.
//
// With incidentOut, each ramp runs a telemetry flight recorder sampling
// the cluster's registry at 250ms; the first shed burst past the knee
// dumps the goodput-over-time series and event log as a JSON incident
// report (or the last ramp dumps at end of run if no burst fired).
func overloadRun(traceName string, requests, nodes int, seed int64, version, dissem string,
	incidentOut string, stepDur, deadline time.Duration) error {
	if nodes < 2 {
		return fmt.Errorf("overload needs at least 2 nodes")
	}
	strategies, err := cliflag.DisseminationList(dissem)
	if err != nil {
		return err
	}
	spec, err := trace.SpecByName(traceName)
	if err != nil {
		return err
	}
	if requests <= 0 || requests > overloadMaxRequests {
		requests = overloadMaxRequests
	}
	if requests < spec.NumRequests {
		spec.NumRequests = requests
	}
	tr, err := trace.Synthesize(spec)
	if err != nil {
		return err
	}
	ver, err := netmodel.VersionByName(version)
	if err != nil {
		return err
	}

	fmt.Printf("overload run: %s, %d-node VIA cluster on loopback, deadline %v, %v per step\n",
		tr.Name, nodes, deadline, stepDur)
	// Shared across ramps so a real shed-burst incident from an early
	// strategy is not overwritten by a later ramp's end-of-run fallback.
	var incidents atomic.Int32
	for i, strategy := range strategies {
		last := i == len(strategies)-1
		if err := overloadRamp(tr, nodes, seed, ver, strategy, stepDur, deadline,
			incidentOut, &incidents, last); err != nil {
			return err
		}
	}
	return nil
}

// overloadRamp runs the calibration burst and the rate ramp against one
// cluster. The cluster is torn down between strategies so each ramp
// starts from cold caches and a fresh saturation estimate.
func overloadRamp(tr *trace.Trace, nodes int, seed int64, ver netmodel.Version,
	strategy core.Strategy, stepDur, deadline time.Duration,
	incidentOut string, incidents *atomic.Int32, lastRamp bool) error {
	var reg *metrics.Registry
	var plane *telemetry.Plane
	if incidentOut != "" {
		reg = metrics.NewRegistry()
		plane = telemetry.New(telemetry.Config{
			Registry: reg,
			Interval: 250 * time.Millisecond,
			Trigger:  telemetry.TriggerConfig{ShedRate: overloadShedTrigger},
		})
		plane.OnIncident(func(inc *telemetry.Incident) {
			incidents.Add(1)
			if err := writeIncidentFile(inc, incidentOut); err != nil {
				fmt.Printf("incident dump: %v\n", err)
				return
			}
			fmt.Printf("incident (%s, dissemination %s): wrote %s\n", inc.Reason, strategy, incidentOut)
		})
		// Disarmed through startup and calibration: the closed-loop
		// burst deliberately saturates the cluster, and its sheds must
		// not burn the trigger before the ramp it is calibrating.
		plane.SetArmed(false)
		plane.Start()
		defer plane.Stop()
	}
	cl, err := server.Start(server.Config{
		Nodes:         nodes,
		Trace:         tr,
		Transport:     server.TransportVIA,
		Version:       ver,
		Dissemination: strategy,
		// Small caches and a real (simulated) disk penalty give the
		// cluster a saturation point the generator can actually reach
		// over loopback.
		CacheBytes: 1 << 20,
		DiskDelay:  2 * time.Millisecond,
		Overload: server.OverloadConfig{
			Enabled:        true,
			RequestTimeout: deadline,
			// Queues sized to the deadline, not to memory: a deep accept
			// queue admits requests that are doomed to expire. The CoDel
			// delay target sheds on sustained queue delay even when the
			// occupancy bound alone would admit seconds of backlog.
			AcceptQueue:      64,
			DiskQueue:        32,
			QueueDelayTarget: deadline / 2,
		},
		Metrics:   reg,
		Telemetry: plane,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	targets := make([]string, nodes)
	for i, a := range cl.Addrs() {
		targets[i] = "http://" + a
	}
	ctx := context.Background()

	// Closed-loop calibration: as-fast-as-possible clients measure the
	// cluster's saturation throughput (and warm its caches) so the ramp
	// multipliers mean the same thing on any machine.
	cal, err := loadgen.Run(ctx, loadgen.Config{
		Targets:     targets,
		Trace:       tr,
		Concurrency: 4 * nodes,
		Requests:    len(tr.Requests),
		Seed:        seed,
		Timeout:     10 * time.Second,
	})
	if err != nil {
		return err
	}
	saturation := cal.Throughput
	if saturation < 100 {
		saturation = 100 // floor: keep the ramp meaningful on a degenerate run
	}
	fmt.Printf("\ndissemination %s: saturation ~%.0f req/s (closed-loop calibration, %d requests)\n",
		strategy, saturation, cal.Requests)
	plane.SetArmed(true)

	t := stats.NewTable("Offered", "req/s", "Issued", "Goodput/s", "p50 ms", "p99 ms",
		"Shed", "Timeout", "Errs", "Srv shed", "Expired")
	before := cl.Stats()
	for i, mult := range overloadRateSteps {
		rate := mult * saturation
		res, err := loadgen.Run(ctx, loadgen.Config{
			Targets:  targets,
			Trace:    tr,
			Rate:     rate,
			Duration: stepDur,
			Seed:     seed + int64(i) + 1,
			// Generous client timeout: overload control answers promptly
			// (503 or within-deadline data), so timeouts here mean the
			// cluster lost control of its queues.
			Timeout: 4 * deadline,
		})
		if err != nil {
			return err
		}
		after := cl.Stats()
		goodput := float64(res.Requests-res.Errors) / res.Elapsed.Seconds()
		t.AddRowf(fmt.Sprintf("%.1fx", mult), fmt.Sprintf("%.0f", rate), res.Requests,
			fmt.Sprintf("%.0f", goodput),
			fmt.Sprintf("%.1f", res.LatencyP50*1e3), fmt.Sprintf("%.1f", res.LatencyP99*1e3),
			res.ErrShed, res.ErrTimeout, res.Errors,
			after.Nodes.Shed-before.Nodes.Shed,
			after.Nodes.DeadlineExpired-before.Nodes.DeadlineExpired)
		before = after
	}
	fmt.Print(t)
	// Teardown's transients must not overwrite a real shed-burst
	// report; if no ramp triggered at all, the last one still dumps
	// the full series so -incident-out always produces a report.
	plane.SetArmed(false)
	if plane != nil && lastRamp && incidents.Load() == 0 {
		plane.Stop()
		plane.DumpIncident("end of overload ramp")
	}
	return nil
}
