package main

import (
	"fmt"
	"time"

	"press/server/procharness"
)

// procsRun is the multi-process availability scenario: N real node
// processes mesh over loopback, a closed-loop driver hammers them, the
// hottest cacher is killed -9 mid-drive and restarted, and the run
// reports availability, the epoch turnover, and rejoin convergence —
// the crash-restart experiment from EXPERIMENTS.md on live processes
// instead of the in-process chaos plan.
func procsRun(procs int, traceName, version, dissem, transport string, dur time.Duration) error {
	if procs < 2 {
		return fmt.Errorf("-procs needs at least 2 processes, got %d", procs)
	}
	h, err := procharness.Start(procharness.Options{
		Nodes:      procs,
		Transport:  transport,
		Version:    version,
		Strategy:   dissem,
		TraceName:  traceName,
		FastHealth: true,
	})
	if err != nil {
		return err
	}
	defer h.Close()

	all := make([]int, procs)
	urls := make([]string, procs)
	for i := range all {
		all[i] = i
		urls[i] = h.URL(i)
	}
	fmt.Printf("spawned %d node processes (%s transport, strategy %s)\n", procs, transport, dissem)
	if err := h.WaitConverged(20*time.Second, all...); err != nil {
		return err
	}
	fmt.Println("mesh converged; driving")
	names := h.FileNames(80)
	seg := dur / 3

	var total procharness.DriveResult
	add := func(r procharness.DriveResult) { total.OK += r.OK; total.Errors += r.Errors }
	add(procharness.Drive(urls, names, seg, 8))

	victim, hottest := 0, int64(-1)
	epochs := make([]uint64, procs)
	for _, id := range all {
		ns, err := h.Stats(id)
		if err != nil {
			return err
		}
		epochs[id] = ns.Epoch
		if ns.Requests > hottest {
			victim, hottest = id, ns.Requests
		}
	}
	survivorURLs := make([]string, 0, procs-1)
	survivors := make([]int, 0, procs-1)
	for _, id := range all {
		if id != victim {
			survivors = append(survivors, id)
			survivorURLs = append(survivorURLs, urls[id])
		}
	}
	fmt.Printf("killing hottest cacher: node %d (%d requests) with SIGKILL mid-drive\n", victim, hottest)

	killAt := time.AfterFunc(seg/4, func() { _ = h.Kill(victim) })
	defer killAt.Stop()
	add(procharness.Drive(survivorURLs, names, seg, 8))

	fmt.Printf("restarting node %d\n", victim)
	if err := h.Restart(victim); err != nil {
		return err
	}
	if err := h.WaitConverged(20*time.Second, all...); err != nil {
		return err
	}
	add(procharness.Drive(urls, names, seg, 8))

	avail := 1.0
	if total.OK+total.Errors > 0 {
		avail = float64(total.OK) / float64(total.OK+total.Errors)
	}
	ns, err := h.Stats(victim)
	if err != nil {
		return err
	}
	var staleDrops int64
	for _, id := range all {
		ss, err := h.Stats(id)
		if err != nil {
			return err
		}
		staleDrops += ss.StaleEpochDrops
	}
	fmt.Printf("\navailability: %.4f (%d ok, %d errors)\n", avail, total.OK, total.Errors)
	if ns.Epoch != 0 {
		// Epoch accounting rides the TCP mesh handshake; the VIA bridge
		// orders lives with per-process id spaces instead.
		fmt.Printf("epoch turnover: node %d rejoined at %d (previous life %d)\n", victim, ns.Epoch, epochs[victim])
		fmt.Printf("stale-epoch frames dropped cluster-wide: %d\n", staleDrops)
		for _, id := range survivors {
			ss, err := h.Stats(id)
			if err != nil {
				return err
			}
			if len(ss.PeerEpochs) <= victim || ss.PeerEpochs[victim] != ns.Epoch {
				return fmt.Errorf("node %d did not adopt node %d's new epoch %d: rejoin did not converge",
					id, victim, ns.Epoch)
			}
		}
		fmt.Println("all survivors accepted the new epoch; rejoin converged")
	} else {
		fmt.Println("rejoin converged")
	}
	if avail < 0.99 {
		return fmt.Errorf("availability %.4f below the 0.99 floor", avail)
	}
	return nil
}
