// Command press-sim regenerates the experimental section of the paper
// on the discrete-event cluster simulator: Figures 1 and 3-6 and
// Tables 2 and 4, plus the design-choice ablations.
//
// Usage:
//
//	press-sim -experiment all|fig1|fig3|fig4|fig5|fig6|table2|table4|
//	                      validate|nodesweep|dirsweep|sensitivity|locality|ablations
//	          [-requests N] [-nodes N] [-trace clarknet|forth|nasa|rutgers] [-seed S]
//	press-sim -metrics [-version V0..V5] [-requests N] [-nodes N] [-trace T] [-seed S]
//
// With -metrics, press-sim runs one instrumented VIA/cLAN simulation of
// the configured trace and dumps the full per-node metrics report on
// exit: message counts by type, copied bytes, remote memory writes,
// completion-latency quantiles, and CPU/disk/NIC utilization.
//
// With -trace-out FILE, the same instrumented run also records
// per-request span trees on simulated time and writes them as Chrome
// trace-event JSON (load in chrome://tracing or Perfetto, or analyze
// with press-trace). -trace-sample controls head sampling (default 1.0:
// every request).
//
// With -chaos, press-sim runs a REAL VIA cluster (server.Start, HTTP on
// loopback) under closed-loop client load while a seeded fault plan
// partitions, heals, crashes, and restarts nodes, then reports
// availability: error classes, failovers by reason, retries,
// reconnects, and the final health view. Combine with -metrics for the
// full registry report and -trace-out to see failover annotations in
// press-trace. -incident-out FILE arms a telemetry flight recorder
// (100ms sampling) that writes a JSON incident report — the pre-fault
// series window plus the failover/brownout event log — when the first
// peer is declared dead, or at end of run if no trigger fires.
//
//	press-sim -chaos [-chaos-faults N] [-chaos-duration D] [-metrics]
//	          [-chaos-target random|hottest] [-hotspot ALPHA] [-replication]
//	          [-requests N] [-nodes N] [-trace T] [-seed S] [-version V]
//	          [-trace-out FILE] [-trace-sample F] [-incident-out FILE]
//
// -chaos-target hottest watches per-node request shares under load for
// the first third of the window, then crashes the busiest node and
// restarts it — the reproducible kill-the-hot-cacher scenario. Combine
// with -hotspot (Zipf-hotspot client workload) and -replication
// (hot-object replication on the cluster) to demonstrate replica
// failover keeping goodput up when the hot cacher dies.
//
// With -overload, press-sim starts a real VIA cluster with overload
// control enabled, calibrates its saturation throughput with a
// closed-loop burst, then ramps an open-loop Poisson arrival process
// through 0.5x-3x of saturation, reporting goodput, latency quantiles,
// and shed counts per step — the goodput-vs-offered-load knee.
// -dissemination all repeats the ramp for every strategy.
//
//	press-sim -overload [-overload-duration D] [-overload-deadline D]
//	          [-dissemination PB|L16|L4|L1|NLB|all]
//	          [-requests N] [-nodes N] [-trace T] [-seed S] [-version V]
//
// With -procs N, press-sim runs a REAL multi-process cluster: N node
// processes (re-execs of this binary) meshed over loopback sockets
// with the membership handshake. The scenario drives closed-loop load,
// kills the hottest cacher with SIGKILL mid-drive, restarts it, and
// reports availability, the epoch turnover, and rejoin convergence —
// crash-restart on live processes, where kill -9 means kill -9.
//
//	press-sim -procs N [-procs-duration D] [-procs-transport tcp|via]
//	          [-trace T] [-dissemination S] [-version V]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"press/cliflag"
	"press/cluster"
	"press/core"
	"press/experiments"
	"press/loadgen"
	"press/metrics"
	"press/netmodel"
	"press/server"
	"press/server/procharness"
	"press/stats"
	"press/telemetry"
	"press/trace"
	"press/tracing"
)

func main() {
	// A press-sim binary doubles as a cluster node when the procharness
	// re-execs it for -procs runs; this returns immediately otherwise.
	procharness.MaybeChild()
	log.SetFlags(0)
	log.SetPrefix("press-sim: ")
	var (
		experiment  = flag.String("experiment", "all", "which experiment to run")
		requests    = flag.Int("requests", 120000, "requests per trace (negative = full paper-scale traces)")
		nodes       = flag.Int("nodes", 8, "cluster size")
		traceName   = flag.String("trace", "clarknet", "trace for single-trace experiments (tables 2 and 4)")
		seed        = flag.Int64("seed", 1, "random seed")
		chart       = flag.Bool("chart", false, "render figure experiments as ASCII bar charts too")
		jsonOut     = flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
		metricsRun  = flag.Bool("metrics", false, "run one instrumented simulation and dump the per-node metrics report")
		version     = flag.String("version", "V5", "communication version for -metrics runs")
		traceOut    = flag.String("trace-out", "", "record request traces during an instrumented run and write Chrome trace-event JSON to FILE")
		traceSample = flag.Float64("trace-sample", 1.0, "fraction of requests to trace (head sampling)")
		chaos       = flag.Bool("chaos", false, "run a real VIA cluster under client load with a seeded fault plan and report availability")
		chaosDur    = flag.Duration("chaos-duration", 3*time.Second, "length of the chaos fault plan")
		chaosFaults = flag.Int("chaos-faults", 2, "fault pairs (partition/heal or crash/restart) in the chaos plan")
		chaosTarget = flag.String("chaos-target", "random", "chaos fault targeting: random (seeded plan) or hottest (observe request shares, then crash the busiest node mid-run)")
		hotspot     = flag.Float64("hotspot", 0, "Zipf-hotspot client workload for -chaos: draw each request from Zipf(alpha) over popularity ranks (0 = trace order)")
		replication = flag.Bool("replication", false, "enable hot-object replication on the -chaos cluster")
		incidentOut = flag.String("incident-out", "", "run a telemetry flight recorder during -chaos or -overload and write a JSON incident report to FILE on the first peer death / shed burst (or at end of run)")
		dissem      = flag.String("dissemination", "PB", "load dissemination strategy for -chaos and -overload runs ("+cliflag.DisseminationNames()+"; -overload also takes all)")
		overload    = flag.Bool("overload", false, "ramp open-loop load past saturation on a real VIA cluster and report the goodput knee")
		ovStepDur   = flag.Duration("overload-duration", 2*time.Second, "length of each offered-rate step in the -overload ramp")
		ovDeadline  = flag.Duration("overload-deadline", 500*time.Millisecond, "per-request deadline for -overload runs")
		procs       = flag.Int("procs", 0, "run a REAL multi-process cluster of this many node processes, kill -9 the hottest mid-drive, restart it, and report availability and rejoin convergence")
		procsDur    = flag.Duration("procs-duration", 6*time.Second, "total drive time for the -procs scenario")
		procsTrans  = flag.String("procs-transport", "tcp", "intra-cluster transport for -procs: tcp, or via (UDP-framed VIA, uses -version)")
	)
	flag.Parse()
	chartMode = *chart

	if *procs > 0 {
		if err := procsRun(*procs, *traceName, *version, *dissem, *procsTrans, *procsDur); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *overload {
		if err := overloadRun(*traceName, *requests, *nodes, *seed, *version, *dissem,
			*incidentOut, *ovStepDur, *ovDeadline); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *chaos {
		if *chaosTarget != "random" && *chaosTarget != "hottest" {
			log.Fatalf("bad -chaos-target %q (random or hottest)", *chaosTarget)
		}
		if err := chaosRun(chaosOpts{
			traceName: *traceName, requests: *requests, nodes: *nodes, seed: *seed,
			version: *version, dissem: *dissem, withMetrics: *metricsRun,
			traceOut: *traceOut, incidentOut: *incidentOut, traceSample: *traceSample,
			duration: *chaosDur, faults: *chaosFaults, target: *chaosTarget,
			hotspot: *hotspot, replication: *replication,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *metricsRun || *traceOut != "" {
		if err := instrumentedRun(*traceName, *requests, *nodes, *seed, *version,
			*metricsRun, *traceOut, *traceSample); err != nil {
			log.Fatal(err)
		}
		return
	}

	o := experiments.Options{Requests: *requests, Nodes: *nodes, Seed: *seed, Trace: *traceName}
	if *jsonOut {
		if err := emitJSON(*experiment, o); err != nil {
			log.Fatal(err)
		}
		return
	}
	runners := map[string]func(experiments.Options) error{
		"fig1":        figure1,
		"fig3":        figure3,
		"fig4":        figure4,
		"fig5":        figure5,
		"fig6":        figure6,
		"table2":      table2,
		"table4":      table4,
		"validate":    validate,
		"ablations":   ablations,
		"nodesweep":   nodeSweep,
		"dirsweep":    dirSweep,
		"sensitivity": sensitivity,
		"locality":    locality,
		"hotspot":     hotspotGoodput,
	}
	order := []string{"fig1", "fig3", "fig4", "table2", "fig5", "table4", "fig6",
		"validate", "nodesweep", "dirsweep", "sensitivity", "locality", "hotspot", "ablations"}
	if *experiment == "all" {
		for _, name := range order {
			if err := runners[name](o); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	run, ok := runners[*experiment]
	if !ok {
		log.Printf("unknown experiment %q; choose from all, %v", *experiment, order)
		os.Exit(2)
	}
	if err := run(o); err != nil {
		log.Fatal(err)
	}
}

// emitJSON runs one experiment (or all) and writes its structured rows
// as JSON, for external plotting.
func emitJSON(name string, o experiments.Options) error {
	collect := map[string]func() (interface{}, error){
		"fig1":     func() (interface{}, error) { return experiments.Figure1(o) },
		"fig3":     func() (interface{}, error) { return experiments.Figure3(o) },
		"fig4":     func() (interface{}, error) { return experiments.Figure4(o) },
		"fig5":     func() (interface{}, error) { return experiments.Figure5(o) },
		"fig6":     func() (interface{}, error) { return experiments.Figure6(o) },
		"table2":   func() (interface{}, error) { return experiments.Table2(o) },
		"table4":   func() (interface{}, error) { return experiments.Table4(o) },
		"validate": func() (interface{}, error) { return experiments.Validation(o) },
		"nodesweep": func() (interface{}, error) {
			return experiments.NodeSweep(o, []int{2, 4, 8, 16, 32})
		},
		"dirsweep": func() (interface{}, error) { return experiments.DirectoryScaling(o) },
		"locality": func() (interface{}, error) {
			return experiments.LocalityBenefit(o, []int64{16 << 20, 32 << 20, 64 << 20, 128 << 20, 512 << 20})
		},
		"hotspot": func() (interface{}, error) {
			return experiments.Hotspot(o, experiments.DefaultHotspotAlphas())
		},
	}
	out := map[string]interface{}{}
	if name == "all" {
		for k, fn := range collect {
			v, err := fn()
			if err != nil {
				return err
			}
			out[k] = v
		}
	} else {
		fn, ok := collect[name]
		if !ok {
			return fmt.Errorf("experiment %q has no JSON form", name)
		}
		v, err := fn()
		if err != nil {
			return err
		}
		out[name] = v
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// instrumentedRun runs one instrumented VIA/cLAN simulation. With
// withMetrics it writes the registry's per-node report: message counts
// by type, copied bytes, remote memory writes, completion-latency
// quantiles, and utilization. With traceOut it records per-request span
// trees on simulated time and dumps them as Chrome trace-event JSON.
func instrumentedRun(traceName string, requests, nodes int, seed int64, version string,
	withMetrics bool, traceOut string, traceSample float64) error {
	spec, err := trace.SpecByName(traceName)
	if err != nil {
		return err
	}
	if requests > 0 && requests < spec.NumRequests {
		spec.NumRequests = requests
	}
	tr, err := trace.Synthesize(spec)
	if err != nil {
		return err
	}
	ver, err := netmodel.VersionByName(version)
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	var tracer *tracing.Tracer
	if traceOut != "" {
		tracer = tracing.New(tracing.WithSampleRate(traceSample), tracing.WithMetrics(reg))
	}
	r, err := cluster.Run(cluster.Config{
		Nodes:         nodes,
		Trace:         tr,
		Combo:         netmodel.VIAOverCLAN(),
		Version:       ver,
		Dissemination: core.PB(),
		Seed:          seed,
		Metrics:       reg,
		Tracing:       tracer,
	})
	if err != nil {
		return err
	}
	fmt.Printf("instrumented run: %s, %d nodes, VIA/cLAN %s: %.0f req/s, p50 %.2f ms, p99 %.2f ms, copied %s, RMWs %d\n\n",
		r.TraceName, r.Nodes, r.Version, r.Throughput,
		r.LatencyP50*1e3, r.LatencyP99*1e3, stats.FormatBytes(r.CopiedBytes), r.RMWCount)
	if traceOut != "" {
		if err := writeTraceFile(tracer, traceOut); err != nil {
			return err
		}
		fmt.Printf("wrote %d spans to %s (chrome://tracing or press-trace)\n",
			len(tracer.Records()), traceOut)
	}
	if withMetrics {
		return reg.Report(os.Stdout)
	}
	return nil
}

// chaosMaxRequests caps the trace replay in chaos mode: unlike the
// discrete-event simulator, -chaos drives a real cluster over loopback
// HTTP, where a paper-scale request count would run for minutes.
const chaosMaxRequests = 20000

// chaosOpts parameterizes one chaos run.
type chaosOpts struct {
	traceName   string
	requests    int
	nodes       int
	seed        int64
	version     string
	dissem      string
	withMetrics bool
	traceOut    string
	incidentOut string
	traceSample float64
	duration    time.Duration
	faults      int
	target      string  // "random" (seeded plan) or "hottest"
	hotspot     float64 // Zipf-hotspot client workload (0 = trace order)
	replication bool    // hot-object replication on the cluster
}

// chaosRun starts a real VIA cluster (server.Start, HTTP on loopback),
// drives closed-loop client load at it, and replays a fault plan —
// partitions, heals, crashes, restarts — while it runs. With
// target=random the plan is seeded up front; with target=hottest the
// run watches per-node request shares for the first third of the plan
// window and then crashes the busiest node (restarting it later), the
// reproducible kill-the-hot-cacher scenario. When the plan has played
// out and the cluster has had a settle window to re-mesh, the load
// stops and the run reports availability (error classes from the load
// generator) plus the fault-tolerance counters: failovers by reason,
// retries, reconnects, directory purges, heartbeats, and each node's
// final health view.
func chaosRun(o chaosOpts) error {
	traceName, requests, nodes, seed := o.traceName, o.requests, o.nodes, o.seed
	version, dissem := o.version, o.dissem
	withMetrics, traceOut, incidentOut := o.withMetrics, o.traceOut, o.incidentOut
	traceSample, duration, faults := o.traceSample, o.duration, o.faults
	if nodes < 2 {
		return fmt.Errorf("chaos needs at least 2 nodes")
	}
	strategy, err := core.StrategyByName(dissem)
	if err != nil {
		return err
	}
	spec, err := trace.SpecByName(traceName)
	if err != nil {
		return err
	}
	if requests <= 0 || requests > chaosMaxRequests {
		requests = chaosMaxRequests
	}
	if requests < spec.NumRequests {
		spec.NumRequests = requests
	}
	tr, err := trace.Synthesize(spec)
	if err != nil {
		return err
	}
	ver, err := netmodel.VersionByName(version)
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	var tracer *tracing.Tracer
	if traceOut != "" {
		tracer = tracing.New(tracing.WithSampleRate(traceSample), tracing.WithMetrics(reg))
	}
	var plane *telemetry.Plane
	var incidents atomic.Int32
	if incidentOut != "" {
		// Fast sampling so a sub-second fault plan still leaves a usable
		// pre-fault series window in the report.
		plane = telemetry.New(telemetry.Config{
			Registry: reg,
			Interval: 100 * time.Millisecond,
			Tracer:   tracer,
			Trigger:  telemetry.TriggerConfig{OnPeerDeath: true},
		})
		plane.OnIncident(func(inc *telemetry.Incident) {
			incidents.Add(1)
			if err := writeIncidentFile(inc, incidentOut); err != nil {
				fmt.Printf("incident dump: %v\n", err)
				return
			}
			fmt.Printf("incident (%s): wrote %s\n", inc.Reason, incidentOut)
		})
		// Disarmed until the cluster is up: while nodes start one by
		// one, peers that have not started yet look dead, and that
		// transient must not burn the trigger (and its cooldown) on a
		// false positive.
		plane.SetArmed(false)
		plane.Start()
		defer plane.Stop()
	}
	cl, err := server.Start(server.Config{
		Nodes:         nodes,
		Trace:         tr,
		Transport:     server.TransportVIA,
		Version:       ver,
		Dissemination: strategy,
		CacheBytes:    8 << 20,
		DiskDelay:     200 * time.Microsecond,
		// Failure detection fast enough that a sub-second partition is
		// noticed, suffered through, and healed within the plan.
		Health: server.HealthConfig{
			HeartbeatInterval: 100 * time.Millisecond,
			SuspectAfter:      300 * time.Millisecond,
			DeadAfter:         600 * time.Millisecond,
			FailoverTimeout:   1500 * time.Millisecond,
		},
		Replication: core.ReplicationConfig{Enabled: o.replication},
		Metrics:     reg,
		Tracer:      tracer,
		Telemetry:   plane,
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	// Cluster meshed: peer deaths from here on are the fault plan's.
	plane.SetArmed(true)

	fmt.Printf("chaos run: %s, %d requests, %d-node VIA cluster on loopback, dissemination %s\n",
		tr.Name, requests, nodes, strategy)
	if o.hotspot > 0 {
		fmt.Printf("hotspot workload: Zipf(%.2f) over popularity ranks\n", o.hotspot)
	}
	if o.replication {
		fmt.Println("hot-object replication: enabled")
	}

	targets := make([]string, nodes)
	for i, a := range cl.Addrs() {
		targets[i] = "http://" + a
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type lgDone struct {
		res *loadgen.Result
		err error
	}
	lgCh := make(chan lgDone, 1)
	go func() {
		res, err := loadgen.Run(ctx, loadgen.Config{
			Targets:     targets,
			Trace:       tr,
			Concurrency: 8,
			Requests:    requests,
			Hotspot:     o.hotspot,
			Seed:        seed,
			Timeout:     10 * time.Second,
		})
		lgCh <- lgDone{res, err}
	}()

	start := time.Now()
	stop := make(chan struct{})
	defer close(stop)
	var plan server.FaultPlan
	if o.target == "hottest" {
		// Observe under load for the first third of the plan window, then
		// aim a crash/restart pair at the node with the highest observed
		// request share — the hot cacher under a Zipf-hotspot workload.
		select {
		case <-time.After(duration / 3):
		case <-ctx.Done():
		}
		h := hottestNode(cl, nodes)
		fmt.Printf("t+%-7v hottest node by request share: %d (crash now, restart in %v)\n",
			time.Since(start).Round(time.Millisecond), h, duration/3)
		plan = server.FaultPlan{Events: []server.FaultEvent{
			{At: 0, Kind: server.FaultCrash, Node: h},
			{At: duration / 3, Kind: server.FaultRestart, Node: h},
		}}
	} else {
		plan = server.RandomFaultPlan(seed, nodes, duration, faults)
		fmt.Printf("fault plan (seed %d, %d fault pairs over %v):\n", seed, faults, duration)
		for _, ev := range plan.Events {
			fmt.Printf("  t+%-7v %-9s node %d\n", ev.At.Round(time.Millisecond), ev.Kind, ev.Node)
		}
	}
	fmt.Println()
	done, err := cl.StartFaultPlan(plan, stop, func(ev server.FaultEvent, err error) {
		at := time.Since(start).Round(time.Millisecond)
		if err != nil {
			fmt.Printf("t+%-7v %s node %d: %v\n", at, ev.Kind, ev.Node, err)
			return
		}
		fmt.Printf("t+%-7v %s node %d\n", at, ev.Kind, ev.Node)
	})
	if err != nil {
		return err
	}
	<-done
	// Settle window: lifted partitions re-dial, health re-integrates,
	// and in-flight failovers drain before the verdict is taken.
	select {
	case <-time.After(2 * time.Second):
	case <-ctx.Done():
	}
	cancel()
	// Plan played out and settled; disarm so the teardown's peer-death
	// storm cannot overwrite a real incident's report.
	plane.SetArmed(false)
	lg := <-lgCh
	if lg.err != nil {
		return lg.err
	}
	res := lg.res

	served := res.Requests - res.Errors
	avail := 100.0
	if res.Requests > 0 {
		avail = 100 * float64(served) / float64(res.Requests)
	}
	fmt.Printf("\navailability: %d/%d requests served (%.2f%%) in %v, %.0f req/s, p_max %.1f ms\n",
		served, res.Requests, avail, res.Elapsed.Round(time.Millisecond),
		res.Throughput, res.LatencyMax*1e3)
	fmt.Printf("error classes: timeout %d, refused %d, server %d, other %d\n",
		res.ErrTimeout, res.ErrRefused, res.ErrServer, res.ErrOther)
	if res.Imbalance > 0 {
		fmt.Printf("per-node success share: imbalance %.2fx (busiest/mean)\n", res.Imbalance)
	}

	chaosNodeTable(cl, reg, nodes)

	if plane != nil && incidents.Load() == 0 {
		// No trigger fired (the plan may have been all partitions that
		// healed before DeadAfter): dump the whole run so the report is
		// never empty.
		plane.DumpIncident("end of chaos run")
	}

	if traceOut != "" {
		if err := writeTraceFile(tracer, traceOut); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d spans to %s (failover annotations visible in press-trace)\n",
			len(tracer.Records()), traceOut)
	}
	if withMetrics {
		fmt.Println()
		return reg.Report(os.Stdout)
	}
	return nil
}

// hottestNode returns the node with the highest observed request share
// — requests served from its cache, locally or for peers. Node 0 is
// spared, as in RandomFaultPlan, so the cluster keeps a dialing side
// for the restart.
func hottestNode(cl *server.Cluster, nodes int) int {
	best, bestServed := 1, int64(-1)
	for i := 1; i < nodes; i++ {
		st := cl.Nodes()[i].Stats()
		if served := st.LocalHits + st.RemoteHits; served > bestServed {
			best, bestServed = i, served
		}
	}
	return best
}

// chaosNodeTable prints the per-node fault-tolerance counters and each
// node's final health view of its peers.
func chaosNodeTable(cl *server.Cluster, reg *metrics.Registry, nodes int) {
	fmt.Println()
	t := stats.NewTable("Node", "Failovers", "Retries", "Reconnects", "Purged",
		"HB sent", "HB missed", "Send errs", "Peers not alive")
	reasons := []string{"peer-dead", "send-error", "timeout"}
	byReason := make(map[string]int64, len(reasons))
	for i := 0; i < nodes; i++ {
		node := fmt.Sprintf("node=%d", i)
		var failovers int64
		for _, reason := range reasons {
			v := reg.Counter("press_failovers_total", node, "reason="+reason).Value()
			failovers += v
			byReason[reason] += v
		}
		var sendErrs int64
		for mt := core.MsgType(0); mt < core.NumMsgTypes; mt++ {
			sendErrs += reg.Counter("press_node_send_errors_total", node, "type="+mt.String()).Value()
		}
		view := "-"
		n := cl.Nodes()[i]
		var sick []string
		for p := 0; p < nodes; p++ {
			if p == i {
				continue
			}
			if st := n.PeerState(p); st != server.StateAlive {
				sick = append(sick, fmt.Sprintf("%d:%s", p, st))
			}
		}
		if len(sick) > 0 {
			view = strings.Join(sick, " ")
		}
		if n.Degraded() {
			view += " (degraded)"
		}
		t.AddRowf(i, failovers,
			reg.Counter("press_retries_total", node).Value(),
			reg.Counter("press_reconnects_total", node).Value(),
			reg.Counter("press_dir_purged_total", node).Value(),
			reg.Counter("press_heartbeats_sent_total", node).Value(),
			reg.Counter("press_heartbeat_misses_total", node).Value(),
			sendErrs, view)
	}
	fmt.Print(t)
	fmt.Printf("failovers by reason: peer-dead %d, send-error %d, timeout %d\n",
		byReason["peer-dead"], byReason["send-error"], byReason["timeout"])
}

// writeIncidentFile writes one flight-recorder incident report as
// JSON, replacing any previous report at path.
func writeIncidentFile(inc *telemetry.Incident, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := inc.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTraceFile dumps the tracer's recorded spans as Chrome
// trace-event JSON.
func writeTraceFile(tr *tracing.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

// chartMode renders bar charts after figure tables when -chart is set.
var chartMode bool

func barChart(title string, labels []string, values []float64) {
	if !chartMode {
		return
	}
	fmt.Printf("\n%s\n", title)
	c := stats.NewBarChart(48)
	for i, l := range labels {
		c.Add(l, values[i])
	}
	fmt.Print(c)
}

func figure1(o experiments.Options) error {
	rows, err := experiments.Figure1(o)
	if err != nil {
		return err
	}
	header("Figure 1: time spent by PRESS on intra-cluster communication (TCP/FE)")
	t := stats.NewTable("Trace", "Comm share", "CPU-only share", "Throughput")
	for _, r := range rows {
		t.AddRowf(r.Trace, fmt.Sprintf("%.0f%%", r.CommFraction*100),
			fmt.Sprintf("%.0f%%", r.CPUOnlyFraction*100), r.Throughput)
	}
	fmt.Print(t)
	return nil
}

func figure3(o experiments.Options) error {
	rows, err := experiments.Figure3(o)
	if err != nil {
		return err
	}
	header("Figure 3: throughput for protocol/network combinations (req/s)")
	t := stats.NewTable("Trace", "TCP/FE", "TCP/cLAN", "VIA/cLAN", "bw effect", "overhead effect")
	for _, r := range rows {
		t.AddRowf(r.Trace, r.TCPFE, r.TCPCLAN, r.VIACLAN,
			fmt.Sprintf("%+.1f%%", r.BandwidthEffect()*100),
			fmt.Sprintf("%+.1f%%", r.OverheadEffect()*100))
	}
	fmt.Print(t)
	for _, r := range rows {
		barChart(r.Trace,
			[]string{"TCP/FE", "TCP/cLAN", "VIA/cLAN"},
			[]float64{r.TCPFE, r.TCPCLAN, r.VIACLAN})
	}
	return nil
}

func figure4(o experiments.Options) error {
	rows, err := experiments.Figure4(o)
	if err != nil {
		return err
	}
	header("Figure 4: throughput for load-information dissemination strategies (req/s)")
	t := stats.NewTable("Trace", "PB", "L16", "L4", "L1", "NLB")
	for _, r := range rows {
		t.AddRowf(r.Trace, r.Throughput["PB"], r.Throughput["L16"],
			r.Throughput["L4"], r.Throughput["L1"], r.Throughput["NLB"])
	}
	fmt.Print(t)
	for _, r := range rows {
		labels := []string{"PB", "L16", "L4", "L1", "NLB"}
		vals := make([]float64, len(labels))
		for i, l := range labels {
			vals[i] = r.Throughput[l]
		}
		barChart(r.Trace, labels, vals)
	}
	return nil
}

func msgTable(title, labelHeader string, blocks []struct {
	label string
	msgs  core.MsgStats
}) {
	header(title)
	t := stats.NewTable(labelHeader, "Msg type", "Num msgs (K)", "Num bytes (MB)", "Avg msg size")
	for _, b := range blocks {
		for mt := core.MsgType(0); mt < core.NumMsgTypes; mt++ {
			t.AddRowf(b.label, mt.String(),
				float64(b.msgs.Count[mt])/1e3,
				float64(b.msgs.Bytes[mt])/1e6,
				b.msgs.AvgSize(mt))
		}
		count, bytes := b.msgs.Total()
		t.AddRowf(b.label, "TOTAL", float64(count)/1e3, float64(bytes)/1e6, "")
	}
	fmt.Print(t)
}

func table2(o experiments.Options) error {
	entries, err := experiments.Table2(o)
	if err != nil {
		return err
	}
	blocks := make([]struct {
		label string
		msgs  core.MsgStats
	}, len(entries))
	for i, e := range entries {
		blocks[i].label = e.Strategy
		blocks[i].msgs = e.Msgs
	}
	msgTable(fmt.Sprintf("Table 2: intra-cluster communication and dissemination strategies (%s)", o.Trace), "Strategy", blocks)
	return nil
}

func figure5(o experiments.Options) error {
	rows, err := experiments.Figure5(o)
	if err != nil {
		return err
	}
	header("Figure 5: throughput increase of the RMW and zero-copy versions over V0")
	t := stats.NewTable("Trace", "V1", "V2", "V3", "V4", "V5")
	for _, r := range rows {
		cells := []interface{}{r.Trace}
		for _, g := range r.Gain {
			cells = append(cells, fmt.Sprintf("%+.1f%%", g*100))
		}
		t.AddRowf(cells...)
	}
	fmt.Print(t)
	return nil
}

func table4(o experiments.Options) error {
	entries, err := experiments.Table4(o)
	if err != nil {
		return err
	}
	blocks := make([]struct {
		label string
		msgs  core.MsgStats
	}, len(entries))
	for i, e := range entries {
		blocks[i].label = e.Version
		blocks[i].msgs = e.Msgs
	}
	msgTable(fmt.Sprintf("Table 4: intra-cluster communication, RMW, and zero-copy (%s)", o.Trace), "Version", blocks)
	return nil
}

func figure6(o experiments.Options) error {
	rows, err := experiments.Figure6(o)
	if err != nil {
		return err
	}
	header("Figure 6: summary of contributions (normalized to full user-level throughput)")
	t := stats.NewTable("Trace", "TCP/cLAN base", "Low overhead", "RMW", "0-copy", "Total gain")
	for _, r := range rows {
		base, low, rmw, zc := r.Contributions()
		t.AddRowf(r.Trace,
			fmt.Sprintf("%.2f", base), fmt.Sprintf("%.2f", low),
			fmt.Sprintf("%.2f", rmw), fmt.Sprintf("%.2f", zc),
			fmt.Sprintf("%+.1f%%", r.TotalGain()*100))
	}
	fmt.Print(t)
	return nil
}

func validate(o experiments.Options) error {
	rows, err := experiments.Validation(o)
	if err != nil {
		return err
	}
	header("Model validation: simulator vs analytical upper bound (Section 4.2)")
	t := stats.NewTable("Trace", "System", "Simulated", "Model", "Model/Sim")
	for _, r := range rows {
		t.AddRowf(r.Trace, r.System, r.Simulated, r.Modeled, fmt.Sprintf("%.2f", r.Ratio))
	}
	fmt.Print(t)
	return nil
}

func nodeSweep(o experiments.Options) error {
	pts, err := experiments.NodeSweep(o, []int{2, 4, 8, 16, 32})
	if err != nil {
		return err
	}
	header("Node sweep: user-level gain vs cluster size, simulator and model (trace " + o.Trace + ")")
	t := stats.NewTable("Nodes", "TCP/cLAN", "VIA/cLAN", "Sim gain", "Model gain")
	for _, p := range pts {
		t.AddRowf(p.Nodes, p.TCP, p.VIA,
			fmt.Sprintf("%+.1f%%", p.Gain*100),
			fmt.Sprintf("%+.1f%%", p.ModelGain*100))
	}
	fmt.Print(t)
	return nil
}

func dirSweep(o experiments.Options) error {
	rows, err := experiments.DirectoryScaling(o)
	if err != nil {
		return err
	}
	header("Directory scaling: broadcast vs sharded vs gossip directory traffic (trace " + o.Trace + ")")
	t := stats.NewTable("Nodes", "Strategy", "Throughput", "Dir msgs",
		"Dir/req", "Dir/req/node", "Load msgs")
	for _, r := range rows {
		for _, c := range r.Cells {
			t.AddRowf(r.Nodes, c.Strategy, c.Throughput, c.DirMsgs,
				fmt.Sprintf("%.2f", c.DirPerReq),
				fmt.Sprintf("%.4f", c.DirPerNodeReq),
				c.LoadMsgs)
		}
	}
	fmt.Print(t)
	return nil
}

func sensitivity(o experiments.Options) error {
	ov, err := experiments.OverheadSweep(o, []float64{2, 7, 15, 30, 60, 135, 270})
	if err != nil {
		return err
	}
	header("Sensitivity: per-message processor overhead (trace " + o.Trace + ")")
	t := stats.NewTable("Overhead (us/msg/end)", "Throughput", "Comm share")
	for _, p := range ov {
		t.AddRowf(fmt.Sprintf("%g", p.OverheadUS), p.Throughput,
			fmt.Sprintf("%.0f%%", p.CommFraction*100))
	}
	fmt.Print(t)

	bw, err := experiments.BandwidthSweep(o, []float64{2, 4, 8, 11.5, 32, 102, 250, 1000})
	if err != nil {
		return err
	}
	header("Sensitivity: internal wire bandwidth (trace " + o.Trace + ")")
	t = stats.NewTable("Wire (MB/s)", "Throughput", "Mean latency (ms)")
	for _, p := range bw {
		t.AddRowf(fmt.Sprintf("%g", p.MBps), p.Throughput,
			fmt.Sprintf("%.2f", p.LatencyMean*1e3))
	}
	fmt.Print(t)
	return nil
}

func locality(o experiments.Options) error {
	pts, err := experiments.LocalityBenefit(o, []int64{16 << 20, 32 << 20, 64 << 20, 128 << 20, 512 << 20})
	if err != nil {
		return err
	}
	header("Locality benefit: PRESS vs a content-oblivious baseline (trace " + o.Trace + ")")
	t := stats.NewTable("Cache/node", "Oblivious", "PRESS", "Advantage", "Obl. hit", "PRESS hit")
	for _, p := range pts {
		t.AddRowf(stats.FormatBytes(p.CacheBytes), p.Oblivious, p.PRESS,
			fmt.Sprintf("%+.1f%%", (p.PRESS/p.Oblivious-1)*100),
			fmt.Sprintf("%.3f", p.ObliviousHit), fmt.Sprintf("%.3f", p.PRESSHit))
	}
	fmt.Print(t)
	return nil
}

func hotspotGoodput(o experiments.Options) error {
	rows, err := experiments.Hotspot(o, experiments.DefaultHotspotAlphas())
	if err != nil {
		return err
	}
	header("Hotspot goodput: Zipf-hotspot workloads with and without hot-object replication (trace " + o.Trace + ")")
	t := stats.NewTable("Zipf alpha", "No replication", "Replication", "Gain",
		"p99 off (ms)", "p99 on (ms)", "Pushes", "Drops")
	for _, r := range rows {
		t.AddRowf(fmt.Sprintf("%.2g", r.Alpha), r.ThroughputOff, r.ThroughputOn,
			fmt.Sprintf("%+.1f%%", r.Gain()*100),
			fmt.Sprintf("%.2f", r.P99Off*1e3), fmt.Sprintf("%.2f", r.P99On*1e3),
			r.ReplicaPushes, r.ReplicaDrops)
	}
	fmt.Print(t)
	return nil
}

func ablations(o experiments.Options) error {
	header("Ablations (trace " + o.Trace + ", VIA/cLAN)")

	pts, err := experiments.AblationLoadThreshold(o, []int{1, 2, 4, 8, 16, 32})
	if err != nil {
		return err
	}
	t := stats.NewTable("Load threshold L", "Throughput")
	for _, p := range pts {
		t.AddRowf(int(p.Param), p.Throughput)
	}
	fmt.Print(t)

	reg, rmw, err := experiments.AblationLoadRMW(o)
	if err != nil {
		return err
	}
	fmt.Printf("\nL1 with regular load broadcasts: %.0f req/s; with RMW: %.0f req/s (%+.1f%%)\n",
		reg, rmw, (rmw/reg-1)*100)

	v2, v3, v3s, err := experiments.AblationRMWSingleMessage(o)
	if err != nil {
		return err
	}
	fmt.Printf("\nRMW file transfer: V2 %.0f, V3 %.0f, hypothetical single-message V3 %.0f req/s\n", v2, v3, v3s)

	sweeps := []struct {
		name string
		fn   func() ([]experiments.SweepPoint, error)
	}{
		{"flow-control credit batch", func() ([]experiments.SweepPoint, error) {
			return experiments.AblationFlowBatch(o, []int{1, 2, 4, 8, 16})
		}},
		{"overload threshold T", func() ([]experiments.SweepPoint, error) {
			return experiments.AblationOverloadThreshold(o, []int{20, 40, 80, 160, 320})
		}},
		{"large-file cutoff (bytes)", func() ([]experiments.SweepPoint, error) {
			return experiments.AblationLargeFileCutoff(o, []int64{32 << 10, 128 << 10, 512 << 10, 2 << 20})
		}},
		{"file segment size (bytes)", func() ([]experiments.SweepPoint, error) {
			return experiments.AblationSegmentSize(o, []int64{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10})
		}},
		{"per-node cache (bytes)", func() ([]experiments.SweepPoint, error) {
			return experiments.AblationCacheSize(o, []int64{16 << 20, 32 << 20, 64 << 20, 128 << 20, 256 << 20})
		}},
	}
	for _, s := range sweeps {
		pts, err := s.fn()
		if err != nil {
			return err
		}
		fmt.Println()
		t := stats.NewTable(s.name, "Throughput")
		for _, p := range pts {
			t.AddRowf(int(p.Param), p.Throughput)
		}
		fmt.Print(t)
	}
	return nil
}
