// Command press-sim regenerates the experimental section of the paper
// on the discrete-event cluster simulator: Figures 1 and 3-6 and
// Tables 2 and 4, plus the design-choice ablations.
//
// Usage:
//
//	press-sim -experiment all|fig1|fig3|fig4|fig5|fig6|table2|table4|
//	                      validate|nodesweep|sensitivity|locality|ablations
//	          [-requests N] [-nodes N] [-trace clarknet|forth|nasa|rutgers] [-seed S]
//	press-sim -metrics [-version V0..V5] [-requests N] [-nodes N] [-trace T] [-seed S]
//
// With -metrics, press-sim runs one instrumented VIA/cLAN simulation of
// the configured trace and dumps the full per-node metrics report on
// exit: message counts by type, copied bytes, remote memory writes,
// completion-latency quantiles, and CPU/disk/NIC utilization.
//
// With -trace-out FILE, the same instrumented run also records
// per-request span trees on simulated time and writes them as Chrome
// trace-event JSON (load in chrome://tracing or Perfetto, or analyze
// with press-trace). -trace-sample controls head sampling (default 1.0:
// every request).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"press/cluster"
	"press/core"
	"press/experiments"
	"press/metrics"
	"press/netmodel"
	"press/stats"
	"press/trace"
	"press/tracing"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("press-sim: ")
	var (
		experiment  = flag.String("experiment", "all", "which experiment to run")
		requests    = flag.Int("requests", 120000, "requests per trace (negative = full paper-scale traces)")
		nodes       = flag.Int("nodes", 8, "cluster size")
		traceName   = flag.String("trace", "clarknet", "trace for single-trace experiments (tables 2 and 4)")
		seed        = flag.Int64("seed", 1, "random seed")
		chart       = flag.Bool("chart", false, "render figure experiments as ASCII bar charts too")
		jsonOut     = flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
		metricsRun  = flag.Bool("metrics", false, "run one instrumented simulation and dump the per-node metrics report")
		version     = flag.String("version", "V5", "communication version for -metrics runs")
		traceOut    = flag.String("trace-out", "", "record request traces during an instrumented run and write Chrome trace-event JSON to FILE")
		traceSample = flag.Float64("trace-sample", 1.0, "fraction of requests to trace (head sampling)")
	)
	flag.Parse()
	chartMode = *chart

	if *metricsRun || *traceOut != "" {
		if err := instrumentedRun(*traceName, *requests, *nodes, *seed, *version,
			*metricsRun, *traceOut, *traceSample); err != nil {
			log.Fatal(err)
		}
		return
	}

	o := experiments.Options{Requests: *requests, Nodes: *nodes, Seed: *seed, Trace: *traceName}
	if *jsonOut {
		if err := emitJSON(*experiment, o); err != nil {
			log.Fatal(err)
		}
		return
	}
	runners := map[string]func(experiments.Options) error{
		"fig1":        figure1,
		"fig3":        figure3,
		"fig4":        figure4,
		"fig5":        figure5,
		"fig6":        figure6,
		"table2":      table2,
		"table4":      table4,
		"validate":    validate,
		"ablations":   ablations,
		"nodesweep":   nodeSweep,
		"sensitivity": sensitivity,
		"locality":    locality,
	}
	order := []string{"fig1", "fig3", "fig4", "table2", "fig5", "table4", "fig6",
		"validate", "nodesweep", "sensitivity", "locality", "ablations"}
	if *experiment == "all" {
		for _, name := range order {
			if err := runners[name](o); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	run, ok := runners[*experiment]
	if !ok {
		log.Printf("unknown experiment %q; choose from all, %v", *experiment, order)
		os.Exit(2)
	}
	if err := run(o); err != nil {
		log.Fatal(err)
	}
}

// emitJSON runs one experiment (or all) and writes its structured rows
// as JSON, for external plotting.
func emitJSON(name string, o experiments.Options) error {
	collect := map[string]func() (interface{}, error){
		"fig1":     func() (interface{}, error) { return experiments.Figure1(o) },
		"fig3":     func() (interface{}, error) { return experiments.Figure3(o) },
		"fig4":     func() (interface{}, error) { return experiments.Figure4(o) },
		"fig5":     func() (interface{}, error) { return experiments.Figure5(o) },
		"fig6":     func() (interface{}, error) { return experiments.Figure6(o) },
		"table2":   func() (interface{}, error) { return experiments.Table2(o) },
		"table4":   func() (interface{}, error) { return experiments.Table4(o) },
		"validate": func() (interface{}, error) { return experiments.Validation(o) },
		"nodesweep": func() (interface{}, error) {
			return experiments.NodeSweep(o, []int{2, 4, 8, 16, 32})
		},
		"locality": func() (interface{}, error) {
			return experiments.LocalityBenefit(o, []int64{16 << 20, 32 << 20, 64 << 20, 128 << 20, 512 << 20})
		},
	}
	out := map[string]interface{}{}
	if name == "all" {
		for k, fn := range collect {
			v, err := fn()
			if err != nil {
				return err
			}
			out[k] = v
		}
	} else {
		fn, ok := collect[name]
		if !ok {
			return fmt.Errorf("experiment %q has no JSON form", name)
		}
		v, err := fn()
		if err != nil {
			return err
		}
		out[name] = v
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// instrumentedRun runs one instrumented VIA/cLAN simulation. With
// withMetrics it writes the registry's per-node report: message counts
// by type, copied bytes, remote memory writes, completion-latency
// quantiles, and utilization. With traceOut it records per-request span
// trees on simulated time and dumps them as Chrome trace-event JSON.
func instrumentedRun(traceName string, requests, nodes int, seed int64, version string,
	withMetrics bool, traceOut string, traceSample float64) error {
	spec, err := trace.SpecByName(traceName)
	if err != nil {
		return err
	}
	if requests > 0 && requests < spec.NumRequests {
		spec.NumRequests = requests
	}
	tr, err := trace.Synthesize(spec)
	if err != nil {
		return err
	}
	ver, err := netmodel.VersionByName(version)
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	var tracer *tracing.Tracer
	if traceOut != "" {
		tracer = tracing.New(tracing.WithSampleRate(traceSample), tracing.WithMetrics(reg))
	}
	r, err := cluster.Run(cluster.Config{
		Nodes:         nodes,
		Trace:         tr,
		Combo:         netmodel.VIAOverCLAN(),
		Version:       ver,
		Dissemination: core.PB(),
		Seed:          seed,
		Metrics:       reg,
		Tracing:       tracer,
	})
	if err != nil {
		return err
	}
	fmt.Printf("instrumented run: %s, %d nodes, VIA/cLAN %s: %.0f req/s, p50 %.2f ms, p99 %.2f ms, copied %s, RMWs %d\n\n",
		r.TraceName, r.Nodes, r.Version, r.Throughput,
		r.LatencyP50*1e3, r.LatencyP99*1e3, stats.FormatBytes(r.CopiedBytes), r.RMWCount)
	if traceOut != "" {
		if err := writeTraceFile(tracer, traceOut); err != nil {
			return err
		}
		fmt.Printf("wrote %d spans to %s (chrome://tracing or press-trace)\n",
			len(tracer.Records()), traceOut)
	}
	if withMetrics {
		return reg.Report(os.Stdout)
	}
	return nil
}

// writeTraceFile dumps the tracer's recorded spans as Chrome
// trace-event JSON.
func writeTraceFile(tr *tracing.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

// chartMode renders bar charts after figure tables when -chart is set.
var chartMode bool

func barChart(title string, labels []string, values []float64) {
	if !chartMode {
		return
	}
	fmt.Printf("\n%s\n", title)
	c := stats.NewBarChart(48)
	for i, l := range labels {
		c.Add(l, values[i])
	}
	fmt.Print(c)
}

func figure1(o experiments.Options) error {
	rows, err := experiments.Figure1(o)
	if err != nil {
		return err
	}
	header("Figure 1: time spent by PRESS on intra-cluster communication (TCP/FE)")
	t := stats.NewTable("Trace", "Comm share", "CPU-only share", "Throughput")
	for _, r := range rows {
		t.AddRowf(r.Trace, fmt.Sprintf("%.0f%%", r.CommFraction*100),
			fmt.Sprintf("%.0f%%", r.CPUOnlyFraction*100), r.Throughput)
	}
	fmt.Print(t)
	return nil
}

func figure3(o experiments.Options) error {
	rows, err := experiments.Figure3(o)
	if err != nil {
		return err
	}
	header("Figure 3: throughput for protocol/network combinations (req/s)")
	t := stats.NewTable("Trace", "TCP/FE", "TCP/cLAN", "VIA/cLAN", "bw effect", "overhead effect")
	for _, r := range rows {
		t.AddRowf(r.Trace, r.TCPFE, r.TCPCLAN, r.VIACLAN,
			fmt.Sprintf("%+.1f%%", r.BandwidthEffect()*100),
			fmt.Sprintf("%+.1f%%", r.OverheadEffect()*100))
	}
	fmt.Print(t)
	for _, r := range rows {
		barChart(r.Trace,
			[]string{"TCP/FE", "TCP/cLAN", "VIA/cLAN"},
			[]float64{r.TCPFE, r.TCPCLAN, r.VIACLAN})
	}
	return nil
}

func figure4(o experiments.Options) error {
	rows, err := experiments.Figure4(o)
	if err != nil {
		return err
	}
	header("Figure 4: throughput for load-information dissemination strategies (req/s)")
	t := stats.NewTable("Trace", "PB", "L16", "L4", "L1", "NLB")
	for _, r := range rows {
		t.AddRowf(r.Trace, r.Throughput["PB"], r.Throughput["L16"],
			r.Throughput["L4"], r.Throughput["L1"], r.Throughput["NLB"])
	}
	fmt.Print(t)
	for _, r := range rows {
		labels := []string{"PB", "L16", "L4", "L1", "NLB"}
		vals := make([]float64, len(labels))
		for i, l := range labels {
			vals[i] = r.Throughput[l]
		}
		barChart(r.Trace, labels, vals)
	}
	return nil
}

func msgTable(title, labelHeader string, blocks []struct {
	label string
	msgs  core.MsgStats
}) {
	header(title)
	t := stats.NewTable(labelHeader, "Msg type", "Num msgs (K)", "Num bytes (MB)", "Avg msg size")
	for _, b := range blocks {
		for mt := core.MsgType(0); mt < core.NumMsgTypes; mt++ {
			t.AddRowf(b.label, mt.String(),
				float64(b.msgs.Count[mt])/1e3,
				float64(b.msgs.Bytes[mt])/1e6,
				b.msgs.AvgSize(mt))
		}
		count, bytes := b.msgs.Total()
		t.AddRowf(b.label, "TOTAL", float64(count)/1e3, float64(bytes)/1e6, "")
	}
	fmt.Print(t)
}

func table2(o experiments.Options) error {
	entries, err := experiments.Table2(o)
	if err != nil {
		return err
	}
	blocks := make([]struct {
		label string
		msgs  core.MsgStats
	}, len(entries))
	for i, e := range entries {
		blocks[i].label = e.Strategy
		blocks[i].msgs = e.Msgs
	}
	msgTable(fmt.Sprintf("Table 2: intra-cluster communication and dissemination strategies (%s)", o.Trace), "Strategy", blocks)
	return nil
}

func figure5(o experiments.Options) error {
	rows, err := experiments.Figure5(o)
	if err != nil {
		return err
	}
	header("Figure 5: throughput increase of the RMW and zero-copy versions over V0")
	t := stats.NewTable("Trace", "V1", "V2", "V3", "V4", "V5")
	for _, r := range rows {
		cells := []interface{}{r.Trace}
		for _, g := range r.Gain {
			cells = append(cells, fmt.Sprintf("%+.1f%%", g*100))
		}
		t.AddRowf(cells...)
	}
	fmt.Print(t)
	return nil
}

func table4(o experiments.Options) error {
	entries, err := experiments.Table4(o)
	if err != nil {
		return err
	}
	blocks := make([]struct {
		label string
		msgs  core.MsgStats
	}, len(entries))
	for i, e := range entries {
		blocks[i].label = e.Version
		blocks[i].msgs = e.Msgs
	}
	msgTable(fmt.Sprintf("Table 4: intra-cluster communication, RMW, and zero-copy (%s)", o.Trace), "Version", blocks)
	return nil
}

func figure6(o experiments.Options) error {
	rows, err := experiments.Figure6(o)
	if err != nil {
		return err
	}
	header("Figure 6: summary of contributions (normalized to full user-level throughput)")
	t := stats.NewTable("Trace", "TCP/cLAN base", "Low overhead", "RMW", "0-copy", "Total gain")
	for _, r := range rows {
		base, low, rmw, zc := r.Contributions()
		t.AddRowf(r.Trace,
			fmt.Sprintf("%.2f", base), fmt.Sprintf("%.2f", low),
			fmt.Sprintf("%.2f", rmw), fmt.Sprintf("%.2f", zc),
			fmt.Sprintf("%+.1f%%", r.TotalGain()*100))
	}
	fmt.Print(t)
	return nil
}

func validate(o experiments.Options) error {
	rows, err := experiments.Validation(o)
	if err != nil {
		return err
	}
	header("Model validation: simulator vs analytical upper bound (Section 4.2)")
	t := stats.NewTable("Trace", "System", "Simulated", "Model", "Model/Sim")
	for _, r := range rows {
		t.AddRowf(r.Trace, r.System, r.Simulated, r.Modeled, fmt.Sprintf("%.2f", r.Ratio))
	}
	fmt.Print(t)
	return nil
}

func nodeSweep(o experiments.Options) error {
	pts, err := experiments.NodeSweep(o, []int{2, 4, 8, 16, 32})
	if err != nil {
		return err
	}
	header("Node sweep: user-level gain vs cluster size, simulator and model (trace " + o.Trace + ")")
	t := stats.NewTable("Nodes", "TCP/cLAN", "VIA/cLAN", "Sim gain", "Model gain")
	for _, p := range pts {
		t.AddRowf(p.Nodes, p.TCP, p.VIA,
			fmt.Sprintf("%+.1f%%", p.Gain*100),
			fmt.Sprintf("%+.1f%%", p.ModelGain*100))
	}
	fmt.Print(t)
	return nil
}

func sensitivity(o experiments.Options) error {
	ov, err := experiments.OverheadSweep(o, []float64{2, 7, 15, 30, 60, 135, 270})
	if err != nil {
		return err
	}
	header("Sensitivity: per-message processor overhead (trace " + o.Trace + ")")
	t := stats.NewTable("Overhead (us/msg/end)", "Throughput", "Comm share")
	for _, p := range ov {
		t.AddRowf(fmt.Sprintf("%g", p.OverheadUS), p.Throughput,
			fmt.Sprintf("%.0f%%", p.CommFraction*100))
	}
	fmt.Print(t)

	bw, err := experiments.BandwidthSweep(o, []float64{2, 4, 8, 11.5, 32, 102, 250, 1000})
	if err != nil {
		return err
	}
	header("Sensitivity: internal wire bandwidth (trace " + o.Trace + ")")
	t = stats.NewTable("Wire (MB/s)", "Throughput", "Mean latency (ms)")
	for _, p := range bw {
		t.AddRowf(fmt.Sprintf("%g", p.MBps), p.Throughput,
			fmt.Sprintf("%.2f", p.LatencyMean*1e3))
	}
	fmt.Print(t)
	return nil
}

func locality(o experiments.Options) error {
	pts, err := experiments.LocalityBenefit(o, []int64{16 << 20, 32 << 20, 64 << 20, 128 << 20, 512 << 20})
	if err != nil {
		return err
	}
	header("Locality benefit: PRESS vs a content-oblivious baseline (trace " + o.Trace + ")")
	t := stats.NewTable("Cache/node", "Oblivious", "PRESS", "Advantage", "Obl. hit", "PRESS hit")
	for _, p := range pts {
		t.AddRowf(stats.FormatBytes(p.CacheBytes), p.Oblivious, p.PRESS,
			fmt.Sprintf("%+.1f%%", (p.PRESS/p.Oblivious-1)*100),
			fmt.Sprintf("%.3f", p.ObliviousHit), fmt.Sprintf("%.3f", p.PRESSHit))
	}
	fmt.Print(t)
	return nil
}

func ablations(o experiments.Options) error {
	header("Ablations (trace " + o.Trace + ", VIA/cLAN)")

	pts, err := experiments.AblationLoadThreshold(o, []int{1, 2, 4, 8, 16, 32})
	if err != nil {
		return err
	}
	t := stats.NewTable("Load threshold L", "Throughput")
	for _, p := range pts {
		t.AddRowf(int(p.Param), p.Throughput)
	}
	fmt.Print(t)

	reg, rmw, err := experiments.AblationLoadRMW(o)
	if err != nil {
		return err
	}
	fmt.Printf("\nL1 with regular load broadcasts: %.0f req/s; with RMW: %.0f req/s (%+.1f%%)\n",
		reg, rmw, (rmw/reg-1)*100)

	v2, v3, v3s, err := experiments.AblationRMWSingleMessage(o)
	if err != nil {
		return err
	}
	fmt.Printf("\nRMW file transfer: V2 %.0f, V3 %.0f, hypothetical single-message V3 %.0f req/s\n", v2, v3, v3s)

	sweeps := []struct {
		name string
		fn   func() ([]experiments.SweepPoint, error)
	}{
		{"flow-control credit batch", func() ([]experiments.SweepPoint, error) {
			return experiments.AblationFlowBatch(o, []int{1, 2, 4, 8, 16})
		}},
		{"overload threshold T", func() ([]experiments.SweepPoint, error) {
			return experiments.AblationOverloadThreshold(o, []int{20, 40, 80, 160, 320})
		}},
		{"large-file cutoff (bytes)", func() ([]experiments.SweepPoint, error) {
			return experiments.AblationLargeFileCutoff(o, []int64{32 << 10, 128 << 10, 512 << 10, 2 << 20})
		}},
		{"file segment size (bytes)", func() ([]experiments.SweepPoint, error) {
			return experiments.AblationSegmentSize(o, []int64{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10})
		}},
		{"per-node cache (bytes)", func() ([]experiments.SweepPoint, error) {
			return experiments.AblationCacheSize(o, []int64{16 << 20, 32 << 20, 64 << 20, 128 << 20, 256 << 20})
		}},
	}
	for _, s := range sweeps {
		pts, err := s.fn()
		if err != nil {
			return err
		}
		fmt.Println()
		t := stats.NewTable(s.name, "Throughput")
		for _, p := range pts {
			t.AddRowf(int(p.Param), p.Throughput)
		}
		fmt.Print(t)
	}
	return nil
}
