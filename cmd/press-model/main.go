// Command press-model solves the paper's analytical model (Section 4)
// and prints the extrapolation surfaces of Figures 8-13.
//
// Usage:
//
//	press-model [-figure 8|9|10|11|12|13|all] [-hit H] [-size KB] [-nodes N]
//
// Without -figure, a single (-hit, -size, -nodes) point is solved for
// all three systems.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"press/model"
	"press/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("press-model: ")
	var (
		figure  = flag.String("figure", "", "figure to print (8..13 or all); empty solves one point")
		hit     = flag.Float64("hit", 0.9, "single-node hit rate for point solves")
		size    = flag.Float64("size", 16, "average file size in KB for point solves")
		nodes   = flag.Int("nodes", 8, "cluster size for point solves")
		latency = flag.Bool("latency", false, "also print response-time curves for point solves")
	)
	flag.Parse()

	if *figure == "" {
		solvePoint(*nodes, *hit, *size, *latency)
		return
	}
	var surfaces []model.Surface
	if *figure == "all" {
		all, err := model.Figures()
		if err != nil {
			log.Fatal(err)
		}
		surfaces = all
	} else {
		fns := map[string]func() (model.Surface, error){
			"8": model.Figure8, "9": model.Figure9, "10": model.Figure10,
			"11": model.Figure11, "12": model.Figure12, "13": model.Figure13,
		}
		fn, ok := fns[*figure]
		if !ok {
			log.Printf("unknown figure %q", *figure)
			os.Exit(2)
		}
		s, err := fn()
		if err != nil {
			log.Fatal(err)
		}
		surfaces = []model.Surface{s}
	}
	for _, s := range surfaces {
		printSurface(s)
	}
}

func solvePoint(nodes int, hit, size float64, latency bool) {
	p := model.DefaultParams(nodes, hit, size)
	w, err := p.SolveWorkload()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: F=%d files, cluster hit rate H=%.3f, replicated hit h=%.3f, forwarded Q=%.3f\n\n",
		w.Files, w.HitRate, w.ReplHit, w.Forwarded)
	t := stats.NewTable("System", "Throughput (req/s)", "Bottleneck")
	for sys := model.System(0); sys < model.NumSystems; sys++ {
		sol, err := p.Solve(sys)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRowf(sys.String(), sol.Throughput, sol.Bottleneck.String())
	}
	fmt.Print(t)
	if !latency {
		return
	}
	fractions := []float64{0.2, 0.4, 0.6, 0.8, 0.9, 0.95}
	for sys := model.System(0); sys < model.NumSystems; sys++ {
		pts, err := p.LatencyCurve(sys, fractions)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nresponse time, %s:\n", sys)
		lt := stats.NewTable("Throughput (req/s)", "Response time (ms)")
		for _, pt := range pts {
			lt.AddRowf(pt.Throughput, fmt.Sprintf("%.2f", pt.ResponseTime*1e3))
		}
		fmt.Print(lt)
	}
}

func printSurface(s model.Surface) {
	fmt.Printf("\n=== %s (throughput ratio by %s x nodes) ===\n\n", s.Name, s.XLabel)
	headers := []string{s.XLabel}
	for _, n := range s.Nodes {
		headers = append(headers, fmt.Sprintf("N=%d", n))
	}
	t := stats.NewTable(headers...)
	for i, x := range s.X {
		cells := []interface{}{fmt.Sprintf("%g", x)}
		for j := range s.Nodes {
			cells = append(cells, fmt.Sprintf("%.2f", s.Gain[i][j]))
		}
		t.AddRowf(cells...)
	}
	fmt.Print(t)
	gain, x, n := s.Max()
	fmt.Printf("\nmax gain %+.1f%% at %s=%g, N=%d\n", (gain-1)*100, s.XLabel, x, n)
}
