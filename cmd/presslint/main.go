// Command presslint runs the project-specific static-analysis suite
// over the given packages (default ./...) and exits nonzero on
// findings. It is part of the tier-1 check gate (see `make check`).
//
// Usage:
//
//	go run ./cmd/presslint [-json] [packages...]
//
// Package arguments are directories; a trailing /... walks
// recursively. Findings print as
//
//	file:line: [analyzer] message
//
// or, with -json, as one JSON object per line:
//
//	{"file":...,"line":...,"analyzer":...,"message":...}
//
// Suppress a finding with //presslint:ignore <analyzer> <justification>
// on the flagged line or the line directly above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"press/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: presslint [-json] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-22s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expand(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "presslint: %v\n", err)
		os.Exit(2)
	}

	fset := token.NewFileSet()
	// One source importer for every package: it resolves stdlib imports
	// (sync, time, ...) so analyzers get real types, and caches across
	// packages. Intra-module imports fail harmlessly; see lint.TypeCheck.
	imp := importer.ForCompiler(fset, "source", nil)

	var findings []lint.Finding
	for _, dir := range dirs {
		pkg, err := lint.LoadDir(fset, dir)
		if err != nil {
			// Unparseable code is the build gate's problem; report and
			// keep linting the rest.
			fmt.Fprintf(os.Stderr, "presslint: %v\n", err)
			continue
		}
		if len(pkg.Files) == 0 {
			continue
		}
		pkg.TypeCheck(imp)
		findings = append(findings, lint.Check(pkg)...)
	}

	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if *jsonOut {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintf(os.Stderr, "presslint: %v\n", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "presslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// expand turns package patterns into the list of directories to lint.
func expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if root == "" || root == "." {
			root = "."
		}
		if !recursive {
			info, err := os.Stat(root)
			if err != nil {
				return nil, err
			}
			if !info.IsDir() {
				return nil, fmt.Errorf("%s is not a directory", root)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}
