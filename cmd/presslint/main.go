// Command presslint runs the project-specific static-analysis suite
// over the given packages (default ./...) and exits nonzero on
// findings. It is part of the tier-1 check gate (see `make check`).
//
// Usage:
//
//	go run ./cmd/presslint [-json|-sarif] [-analyzer a,b] [packages...]
//
// Package arguments are directories; a trailing /... walks
// recursively. All packages are parsed and type-checked ONCE into a
// whole-program view shared by every analyzer — the interprocedural
// analyzers (hotpath-alloc, lock-order, atomic-consistency) need the
// cross-package call graph, and the per-file analyzers reuse the same
// type information instead of re-checking per package.
//
// Findings print as
//
//	file:line: [analyzer] message
//
// or, with -json, as one JSON object per line:
//
//	{"file":...,"line":...,"analyzer":...,"message":...}
//
// or, with -sarif, as a single SARIF 2.1.0 document for code-scanning
// upload.
//
// -analyzer restricts the run to a comma-separated subset, e.g.
// -analyzer hotpath-alloc,lock-order.
//
// Suppress a finding with //presslint:ignore <analyzer> <justification>
// on the flagged line or the line directly above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"press/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 document")
	analyzerFlag := flag.String("analyzer", "", "comma-separated analyzer names to run (default all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: presslint [-json|-sarif] [-analyzer a,b] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-22s %s\n", a.Name, a.Doc)
		}
		for _, a := range lint.ProgramAnalyzers() {
			fmt.Fprintf(os.Stderr, "  %-22s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "presslint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	only, err := parseAnalyzers(*analyzerFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "presslint: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expand(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "presslint: %v\n", err)
		os.Exit(2)
	}

	fset := token.NewFileSet()
	modPath := modulePath()
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := lint.LoadDir(fset, dir)
		if err != nil {
			// Unparseable code is the build gate's problem; report and
			// keep linting the rest.
			fmt.Fprintf(os.Stderr, "presslint: %v\n", err)
			continue
		}
		if len(pkg.Files) == 0 {
			continue
		}
		pkg.Path = importPathFor(modPath, dir)
		pkgs = append(pkgs, pkg)
	}

	// One program: every package type-checked once, in dependency order,
	// with intra-module imports resolved against each other and stdlib
	// imports through a shared source importer.
	prog := lint.LoadProgram(fset, pkgs, importer.ForCompiler(fset, "source", nil))
	findings := prog.CheckAnalyzers(only)

	switch {
	case *sarifOut:
		if err := writeSARIF(os.Stdout, findings); err != nil {
			fmt.Fprintf(os.Stderr, "presslint: %v\n", err)
			os.Exit(2)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintf(os.Stderr, "presslint: %v\n", err)
				os.Exit(2)
			}
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "presslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// parseAnalyzers turns the -analyzer flag into a set, rejecting names
// the suite does not know so a typo fails loudly instead of silently
// running nothing.
func parseAnalyzers(s string) (map[string]bool, error) {
	if s == "" {
		return nil, nil
	}
	known := make(map[string]bool)
	for _, name := range lint.AnalyzerNames() {
		known[name] = true
	}
	only := make(map[string]bool)
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown analyzer %q (see -h for the list)", name)
		}
		only[name] = true
	}
	return only, nil
}

// modulePath reads the module path from go.mod in the working
// directory, so package directories map to import paths. Outside a
// module the directory itself serves as the path.
func modulePath() string {
	data, err := os.ReadFile("go.mod")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

func importPathFor(modPath, dir string) string {
	dir = filepath.ToSlash(filepath.Clean(dir))
	if modPath == "" {
		return dir
	}
	if dir == "." {
		return modPath
	}
	return modPath + "/" + dir
}

// expand turns package patterns into the list of directories to lint.
func expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if root == "" || root == "." {
			root = "."
		}
		if !recursive {
			info, err := os.Stat(root)
			if err != nil {
				return nil, err
			}
			if !info.IsDir() {
				return nil, fmt.Errorf("%s is not a directory", root)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// --- SARIF output -----------------------------------------------------

// sarifLog is the subset of SARIF 2.1.0 that code-scanning consumers
// require: one run, one rule per analyzer, one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

func writeSARIF(w *os.File, findings []lint.Finding) error {
	docs := make(map[string]string)
	for _, a := range lint.Analyzers() {
		docs[a.Name] = a.Doc
	}
	for _, a := range lint.ProgramAnalyzers() {
		docs[a.Name] = a.Doc
	}
	var rules []sarifRule
	ruleSeen := make(map[string]bool)
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		if !ruleSeen[f.Analyzer] {
			ruleSeen[f.Analyzer] = true
			rules = append(rules, sarifRule{ID: f.Analyzer, ShortDescription: sarifMessage{Text: docs[f.Analyzer]}})
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.File)},
				Region:           sarifRegion{StartLine: f.Line},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "presslint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
