// Command pressd runs a real PRESS cluster in one process: N server
// nodes over software VIA or loopback TCP, each serving HTTP. Node
// addresses are printed at startup; drive them with press-loadgen or
// any HTTP client, and stop with SIGINT.
//
// Usage:
//
//	pressd [-nodes 4] [-transport via|tcp] [-version V0..V5]
//	       [-dissemination PB|L16|L4|L1|NLB|SHARD|GOSSIP] [-trace clarknet] [-files N]
//	       [-cache BYTES] [-disk-delay 2ms] [-replication] [-metrics] [-expose]
//	       [-incident-out FILE] [-trace-out FILE] [-trace-sample RATE]
//	       [-pprof ADDR]
//	pressd -node I -peers HOST:PORT,... [-http ADDR] [-udp-peers ADDR,...]
//	       [-drain 5s] ...
//
// With -peers, pressd runs in mesh mode: ONE node per OS process. The
// comma-separated list names every node's intra-cluster listen address
// and -node says which entry this process is. Peers mesh over the
// versioned membership handshake; a late or restarted process joins
// under a fresh epoch and has the directory replayed. -transport via
// additionally needs -udp-peers, the VIA bridge endpoints. SIGTERM
// announces the leave and drains in-flight clients (deadline -drain)
// before exiting 0.
//
// With -replication, hot-object replication is enabled with its
// defaults: files whose request rate and cacher load cross the
// thresholds are pushed to extra replicas and routed with
// power-of-two choices (see press_replica_* metric families).
//
// With -metrics, pressd collects per-NIC and per-node instrument
// families in a metrics registry and dumps the report on exit; SIGUSR1
// dumps a live report without stopping the server.
//
// With -expose (implies -metrics), every node serves the registry in
// Prometheus text format at /_press/metrics — point press-top or any
// scraper at the printed URLs.
//
// With -incident-out FILE (implies -metrics), pressd runs a telemetry
// plane — a flight recorder sampling the registry once a second and
// logging cluster events (peer death, failover, brownouts) — and writes
// a JSON incident report to FILE when a peer dies, when the shed rate
// spikes, or on SIGQUIT.
//
// With -trace-out FILE, pressd records end-to-end request traces —
// accept, dispatch, forward, credit-stall, staging-copy, disk, and
// reply spans stitched across nodes — and writes them as Chrome
// trace-event JSON on exit and on SIGUSR1. -trace-sample controls head
// sampling. -pprof ADDR serves net/http/pprof on the given address.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"press/cliflag"
	"press/core"
	"press/metrics"
	"press/netmodel"
	"press/server"
	"press/telemetry"
	"press/trace"
	"press/tracing"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pressd: ")
	var (
		nodes       = flag.Int("nodes", 4, "cluster size")
		transport   = flag.String("transport", "via", "intra-cluster transport: via or tcp")
		version     = flag.String("version", "V5", "communication version V0..V5 (VIA only)")
		traceName   = flag.String("trace", "clarknet", "file population: clarknet, forth, nasa, rutgers")
		files       = flag.Int("files", 2000, "limit the file population (0 = full trace)")
		cache       = flag.Int64("cache", 64<<20, "per-node cache bytes")
		diskDelay   = flag.Duration("disk-delay", 2*time.Millisecond, "artificial disk read latency")
		replication = flag.Bool("replication", false, "enable hot-object replication (popularity-triggered replicas, power-of-two-choices routing)")
		withMet     = flag.Bool("metrics", false, "collect a metrics registry; dump on exit and on SIGUSR1")
		expose      = flag.Bool("expose", false, "serve Prometheus exposition at /_press/metrics on every node (implies -metrics)")
		incidentOut = flag.String("incident-out", "", "run the telemetry flight recorder; write a JSON incident report to FILE on peer death, shed spike, or SIGQUIT (implies -metrics)")
		traceOut    = flag.String("trace-out", "", "record request traces; write Chrome trace-event JSON to FILE on exit and on SIGUSR1")
		traceSample = flag.Float64("trace-sample", 1.0, "fraction of requests to trace (head sampling)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		node        = flag.Int("node", -1, "mesh mode: run ONE node of a multi-process cluster; this process's id in the -peers list")
		peers       = flag.String("peers", "", "mesh mode: comma-separated intra-cluster listen addresses, one per node (enables mesh mode)")
		httpAddr    = flag.String("http", "", "mesh mode: client-facing HTTP bind address (default: loopback, ephemeral port)")
		udpPeers    = flag.String("udp-peers", "", "mesh mode: comma-separated VIA bridge UDP addresses, one per node (transport via)")
		drain       = flag.Duration("drain", 5*time.Second, "mesh mode: deadline for the graceful SIGTERM drain")
	)
	strategy := cliflag.Dissemination(flag.CommandLine, "dissemination", core.PB(), "")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// The default mux carries the pprof handlers via the
			// net/http/pprof blank import.
			log.Printf("pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	spec, err := trace.SpecByName(*traceName)
	if err != nil {
		log.Fatal(err)
	}
	if *files > 0 && *files < spec.NumFiles {
		spec.NumFiles = *files
	}
	spec.NumRequests = 1 // the population matters; requests come from clients
	tr, err := trace.Synthesize(spec)
	if err != nil {
		log.Fatal(err)
	}

	kind := server.TransportVIA
	if *transport == "tcp" {
		kind = server.TransportTCP
	} else if *transport != "via" {
		log.Fatalf("unknown transport %q", *transport)
	}
	ver, err := netmodel.VersionByName(*version)
	if err != nil {
		log.Fatal(err)
	}
	var reg *metrics.Registry
	if *withMet || *expose || *incidentOut != "" {
		reg = metrics.NewRegistry()
	}
	var tracer *tracing.Tracer
	if *traceOut != "" {
		tracer = tracing.New(tracing.WithSampleRate(*traceSample), tracing.WithMetrics(reg))
	}
	var plane *telemetry.Plane
	if *incidentOut != "" {
		plane = telemetry.New(telemetry.Config{
			Registry: reg,
			Tracer:   tracer,
			Trigger:  telemetry.TriggerConfig{OnPeerDeath: true},
		})
		plane.OnIncident(func(inc *telemetry.Incident) {
			if err := writeIncident(inc, *incidentOut); err != nil {
				log.Printf("incident dump: %v", err)
				return
			}
			fmt.Printf("--- incident (%s): wrote %s ---\n", inc.Reason, *incidentOut)
		})
		// Disarmed until the cluster is up: nodes starting one by one
		// look dead to each other, and that transient must not burn
		// the trigger (and its cooldown) on a false positive.
		plane.SetArmed(false)
		plane.Start()
		defer plane.Stop()
	}
	if *peers != "" {
		peerList := splitAddrs(*peers)
		var udpList []string
		if *udpPeers != "" {
			udpList = splitAddrs(*udpPeers)
		}
		if *node < 0 || *node >= len(peerList) {
			log.Fatalf("-node %d out of range for %d -peers", *node, len(peerList))
		}
		if kind == server.TransportVIA && len(udpList) != len(peerList) {
			log.Fatalf("transport via needs -udp-peers with %d addresses, got %d", len(peerList), len(udpList))
		}
		code := runMeshNode(server.Config{
			Nodes:         len(peerList),
			Trace:         tr,
			Transport:     kind,
			Version:       ver,
			Dissemination: *strategy,
			CacheBytes:    *cache,
			DiskDelay:     *diskDelay,
			Replication:   core.ReplicationConfig{Enabled: *replication},
			Metrics:       reg,
			Tracer:        tracer,
			Telemetry:     plane,
			Mesh: &server.MeshConfig{
				Self:      *node,
				PeerAddrs: peerList,
				UDPAddrs:  udpList,
				HTTPAddr:  *httpAddr,
			},
		}, plane, reg, tracer, *traceOut, *drain)
		plane.Stop()
		os.Exit(code)
	}

	cl, err := server.Start(server.Config{
		Nodes:         *nodes,
		Trace:         tr,
		Transport:     kind,
		Version:       ver,
		Dissemination: *strategy,
		CacheBytes:    *cache,
		DiskDelay:     *diskDelay,
		Replication:   core.ReplicationConfig{Enabled: *replication},
		Metrics:       reg,
		Tracer:        tracer,
		Telemetry:     plane,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	plane.SetArmed(true)

	repl := ""
	if *replication {
		repl = ", replication on"
	}
	fmt.Printf("PRESS cluster up: %d nodes, %s transport, version %s, strategy %s, %d files%s\n",
		*nodes, kind, ver.Name, *strategy, len(tr.Files), repl)
	for i, a := range cl.Addrs() {
		fmt.Printf("  node %d: http://%s\n", i, a)
	}
	if *expose {
		for i, a := range cl.Addrs() {
			fmt.Printf("  scrape node %d: http://%s/_press/metrics\n", i, a)
		}
	}
	fmt.Println("serving; Ctrl-C to stop")

	// One goroutine owns all signal handling: SIGUSR1 dumps live
	// observability (metrics report and trace file) without stopping the
	// server; SIGQUIT forces a flight-recorder incident dump;
	// SIGINT/SIGTERM fall through to the shutdown path below, which
	// dumps everything a final time.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1, syscall.SIGQUIT)
	for s := range sig {
		if s == syscall.SIGQUIT {
			if plane != nil {
				plane.DumpIncident("SIGQUIT")
			} else {
				log.Print("SIGQUIT: no telemetry plane (run with -incident-out)")
			}
			continue
		}
		if s != syscall.SIGUSR1 {
			// Shutting down: the teardown's peer-death storm must not
			// overwrite a real incident's report.
			plane.SetArmed(false)
			break
		}
		if reg != nil {
			fmt.Println("\n--- metrics (SIGUSR1) ---")
			if err := reg.Report(os.Stdout); err != nil {
				log.Print(err)
			}
		}
		if tracer != nil {
			if err := dumpTraces(tracer, *traceOut); err != nil {
				log.Print(err)
			} else {
				fmt.Printf("--- traces (SIGUSR1): wrote %s ---\n", *traceOut)
			}
		}
	}

	s := cl.Stats()
	fmt.Printf("\nrequests=%d localHits=%d remoteHits=%d forwarded=%d diskReads=%d replicas=%d errors=%d\n",
		s.Nodes.Requests, s.Nodes.LocalHits, s.Nodes.RemoteHits,
		s.Nodes.Forwarded, s.Nodes.DiskReads, s.Nodes.Replicas, s.Nodes.Errors)
	for mt := core.MsgType(0); mt < core.NumMsgTypes; mt++ {
		fmt.Printf("  %-8s %8d msgs %12d bytes\n", mt, s.Msgs.Count[mt], s.Msgs.Bytes[mt])
	}
	if reg != nil {
		fmt.Println("\n--- metrics ---")
		if err := reg.Report(os.Stdout); err != nil {
			log.Print(err)
		}
	}
	if tracer != nil {
		if err := dumpTraces(tracer, *traceOut); err != nil {
			log.Print(err)
		} else {
			fmt.Printf("\nwrote %d spans to %s (chrome://tracing or press-trace)\n",
				len(tracer.Records()), *traceOut)
		}
	}
}

// writeIncident writes one incident report as JSON, replacing any
// previous report at path.
func writeIncident(inc *telemetry.Incident, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := inc.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dumpTraces writes the tracer's recorded spans as Chrome trace-event
// JSON, replacing any previous dump at path.
func dumpTraces(tr *tracing.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
