package main

import (
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"press/metrics"
	"press/server"
	"press/telemetry"
	"press/tracing"
)

// splitAddrs parses a comma-separated address list flag.
func splitAddrs(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Mesh mode: -peers turns pressd from an in-process cluster into ONE
// node of a multi-process one. Each process runs node -node of the
// seed list, meshes with its peers over the membership handshake, and
// serves clients on -http. A restarted process rejoins under a fresh
// epoch and has the directory replayed; SIGTERM announces the leave,
// drains in-flight clients, and exits 0.

// runMeshNode runs one cluster node to completion. It returns the
// process exit code: 0 for an orderly SIGINT stop or a completed
// SIGTERM drain, 1 when the drain misses its deadline.
func runMeshNode(cfg server.Config, plane *telemetry.Plane, reg *metrics.Registry,
	tracer *tracing.Tracer, traceOut string, drain time.Duration) int {
	pn, err := server.StartNode(cfg)
	if err != nil {
		log.Print(err)
		return 1
	}
	plane.SetArmed(true)

	fmt.Printf("PRESS node %d of %d up: http://%s (epoch %d, %s transport)\n",
		cfg.Mesh.Self, cfg.Nodes, pn.HTTPAddr(), pn.Epoch(), cfg.Transport)
	fmt.Println("serving; SIGTERM drains, Ctrl-C stops")

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1, syscall.SIGQUIT)
	for s := range sig {
		switch s {
		case syscall.SIGUSR1:
			if reg != nil {
				fmt.Println("\n--- metrics (SIGUSR1) ---")
				if err := reg.Report(os.Stdout); err != nil {
					log.Print(err)
				}
			}
			if tracer != nil {
				if err := dumpTraces(tracer, traceOut); err != nil {
					log.Print(err)
				}
			}
		case syscall.SIGQUIT:
			if plane != nil {
				plane.DumpIncident("SIGQUIT")
			} else {
				log.Print("SIGQUIT: no telemetry plane (run with -incident-out)")
			}
		case syscall.SIGTERM:
			// Graceful leave: tell the peers, finish the clients we have,
			// exit clean so orchestrators see an orderly departure.
			plane.SetArmed(false)
			if err := pn.Drain(drain); err != nil {
				log.Printf("drain: %v", err)
				return 1
			}
			return 0
		default: // SIGINT: hard stop, no leave announcement
			plane.SetArmed(false)
			pn.Close()
			return 0
		}
	}
	return 0
}
