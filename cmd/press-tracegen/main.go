// Command press-tracegen synthesizes, inspects, and converts workload
// traces.
//
// Usage:
//
//	press-tracegen -table1                    # verify Table 1 calibration
//	press-tracegen -name nasa -out nasa.trc   # write a binary trace
//	press-tracegen -in nasa.trc               # print a trace's statistics
//	press-tracegen -clf access.log -out t.trc # convert a Common Log Format log
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"press/stats"
	"press/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("press-tracegen: ")
	var (
		table1   = flag.Bool("table1", false, "synthesize all four paper traces and print Table 1")
		name     = flag.String("name", "", "synthesize a paper trace: clarknet, forth, nasa, rutgers")
		requests = flag.Int("requests", 0, "override the request count (0 = Table 1 value)")
		clf      = flag.String("clf", "", "parse a Common Log Format file instead of synthesizing")
		in       = flag.String("in", "", "read a binary trace and print statistics")
		out      = flag.String("out", "", "write the trace in binary form to this path")
	)
	flag.Parse()

	switch {
	case *table1:
		printTable1()
	case *in != "":
		tr := readTrace(*in)
		printStats(tr)
		maybeWrite(tr, *out)
	case *clf != "":
		f, err := os.Open(*clf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr, err := trace.ParseCLF(*clf, f)
		if err != nil {
			log.Fatal(err)
		}
		printStats(tr)
		maybeWrite(tr, *out)
	case *name != "":
		spec, err := trace.SpecByName(*name)
		if err != nil {
			log.Fatal(err)
		}
		if *requests > 0 {
			spec.NumRequests = *requests
		}
		tr, err := trace.Synthesize(spec)
		if err != nil {
			log.Fatal(err)
		}
		printStats(tr)
		maybeWrite(tr, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printTable1() {
	fmt.Println("Table 1: main characteristics of the WWW server traces (synthesized)")
	fmt.Println()
	t := stats.NewTable("Logs", "Num files", "Avg file size", "Num requests", "Avg req size")
	for _, spec := range trace.Table1Specs() {
		tr, err := trace.Synthesize(spec)
		if err != nil {
			log.Fatal(err)
		}
		st := tr.Stats()
		t.AddRowf(spec.Name, st.NumFiles,
			fmt.Sprintf("%.1f KB", st.AvgFileKB),
			st.NumRequests,
			fmt.Sprintf("%.1f KB", st.AvgReqKB))
	}
	fmt.Print(t)
}

func readTrace(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var tr trace.Trace
	if _, err := tr.ReadFrom(f); err != nil {
		log.Fatal(err)
	}
	return &tr
}

func printStats(tr *trace.Trace) {
	if err := tr.Validate(); err != nil {
		log.Fatal(err)
	}
	st := tr.Stats()
	fmt.Printf("trace %q: %d files (avg %.1f KB, %s working set), %d requests (avg %.1f KB)\n",
		tr.Name, st.NumFiles, st.AvgFileKB, stats.FormatBytes(st.TotalBytes),
		st.NumRequests, st.AvgReqKB)
	if p, err := tr.AnalyzePopularity(); err == nil {
		fmt.Printf("popularity: Zipf-like alpha %.2f (R²=%.3f), %d distinct files requested, top-10%% share %.0f%%\n",
			p.Alpha, p.R2, p.DistinctFiles, p.Top10Share*100)
	}
}

func maybeWrite(tr *trace.Trace, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	n, err := tr.WriteTo(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%s)\n", path, stats.FormatBytes(n))
}
