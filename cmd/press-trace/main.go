// Command press-trace analyzes a Chrome trace-event JSON dump written
// by press-sim -trace-out or pressd -trace-out: it rebuilds each
// request's span tree, attributes self time to the instrumented phases
// (accept-queue, dispatch, net, credit-stall, staging-copy, disk,
// reply), and prints the aggregate critical-path breakdown plus the
// slowest requests — the software analogue of the paper's Table 2
// overhead decomposition.
//
// Usage:
//
//	press-trace [-top N] FILE
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"press/stats"
	"press/tracing"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("press-trace: ")
	top := flag.Int("top", 10, "how many slowest requests to list")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: press-trace [-top N] FILE")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *top); err != nil {
		log.Fatal(err)
	}
}

func run(path string, top int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := tracing.ReadChrome(f)
	if err != nil {
		return err
	}
	sums := tracing.Summarize(recs)
	if len(sums) == 0 {
		return fmt.Errorf("%s: no request traces (was the run sampled to zero?)", path)
	}

	forwarded := 0
	for _, s := range sums {
		if s.Forwarded {
			forwarded++
		}
	}
	fmt.Printf("%s: %d spans, %d requests (%d forwarded)\n\n", path, len(recs), len(sums), forwarded)

	return stats.RenderAll(os.Stdout,
		stats.Titled("Critical path: per-phase self time across all requests", phaseTable(sums)),
		stats.Titled(fmt.Sprintf("\nSlowest %d requests (per-phase self time, us)", top), slowTable(sums, top)),
	)
}

// phaseTable aggregates per-phase self time over all requests.
func phaseTable(sums []tracing.TraceSummary) *stats.Table {
	totals := map[string]int64{}
	counts := map[string]int{}
	var grand int64
	for _, s := range sums {
		for ph, ns := range s.Phases {
			totals[ph] += ns
			counts[ph]++
			grand += ns
		}
	}
	t := stats.NewTable("Phase", "Total (ms)", "Share", "Requests", "Mean/req (us)")
	for _, ph := range tracing.Phases() {
		ns, ok := totals[ph]
		if !ok {
			continue
		}
		share := 0.0
		if grand > 0 {
			share = float64(ns) / float64(grand)
		}
		t.AddRowf(ph,
			fmt.Sprintf("%.3f", float64(ns)/1e6),
			fmt.Sprintf("%.1f%%", share*100),
			counts[ph],
			fmt.Sprintf("%.1f", float64(ns)/1e3/float64(counts[ph])))
	}
	t.AddRowf("TOTAL", fmt.Sprintf("%.3f", float64(grand)/1e6), "", len(sums), "")
	return t
}

// slowTable lists the slowest requests with their phase breakdown.
func slowTable(sums []tracing.TraceSummary, top int) *stats.Table {
	byDur := make([]tracing.TraceSummary, len(sums))
	copy(byDur, sums)
	sort.Slice(byDur, func(i, j int) bool { return byDur[i].Dur > byDur[j].Dur })
	if top > len(byDur) {
		top = len(byDur)
	}
	header := []string{"Trace", "Dur (us)", "Spans", "Nodes", "Fwd"}
	header = append(header, tracing.Phases()...)
	t := stats.NewTable(header...)
	for _, s := range byDur[:top] {
		fwd := ""
		if s.Forwarded {
			fwd = "yes"
		}
		row := []interface{}{
			fmt.Sprintf("%016x", uint64(s.Trace)),
			fmt.Sprintf("%.1f", float64(s.Dur)/1e3),
			s.Spans, s.Nodes, fwd,
		}
		for _, ph := range tracing.Phases() {
			if ns, ok := s.Phases[ph]; ok {
				row = append(row, fmt.Sprintf("%.1f", float64(ns)/1e3))
			} else {
				row = append(row, "")
			}
		}
		t.AddRowf(row...)
	}
	return t
}
