// Command press-loadgen drives a running PRESS cluster (see pressd)
// with a synthesized trace, closed-loop, and reports throughput.
//
// Usage:
//
//	press-loadgen -targets http://127.0.0.1:PORT1,http://127.0.0.1:PORT2 \
//	              [-trace clarknet] [-files 2000] [-requests 20000] [-concurrency 32]
//
// The -trace/-files flags must match the pressd instance so the
// requested names exist.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"press/loadgen"
	"press/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("press-loadgen: ")
	var (
		targets     = flag.String("targets", "", "comma-separated base URLs of cluster nodes")
		traceName   = flag.String("trace", "clarknet", "trace name (must match pressd)")
		files       = flag.Int("files", 2000, "file population limit (must match pressd)")
		requests    = flag.Int("requests", 20000, "number of requests to issue")
		concurrency = flag.Int("concurrency", 32, "closed-loop clients")
		seed        = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *targets == "" {
		log.Print("missing -targets")
		flag.Usage()
		os.Exit(2)
	}

	spec, err := trace.SpecByName(*traceName)
	if err != nil {
		log.Fatal(err)
	}
	if *files > 0 && *files < spec.NumFiles {
		spec.NumFiles = *files
	}
	if *requests < spec.NumRequests {
		spec.NumRequests = *requests
	}
	tr, err := trace.Synthesize(spec)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := loadgen.Run(ctx, loadgen.Config{
		Targets:     strings.Split(*targets, ","),
		Trace:       tr,
		Concurrency: *concurrency,
		Requests:    *requests,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("requests:   %d (%d errors)\n", res.Requests, res.Errors)
	if res.Errors > 0 {
		fmt.Printf("errors:     timeout %d  refused %d  server %d  other %d\n",
			res.ErrTimeout, res.ErrRefused, res.ErrServer, res.ErrOther)
	}
	fmt.Printf("elapsed:    %v\n", res.Elapsed)
	fmt.Printf("throughput: %.1f req/s\n", res.Throughput)
	fmt.Printf("bytes:      %d\n", res.Bytes)
	fmt.Printf("latency:    mean %.2fms  std %.2fms  max %.2fms\n",
		res.LatencyMean*1e3, res.LatencyStd*1e3, res.LatencyMax*1e3)
}
