// Command press-loadgen drives a running PRESS cluster (see pressd)
// with a synthesized trace and reports throughput. The default mode is
// closed-loop (paper methodology: clients issue as fast as possible);
// -rate switches to an open-loop Poisson arrival process that keeps
// offering load no matter how slowly the cluster answers — the mode
// that pushes a cluster past saturation and exercises its overload
// control.
//
// Usage:
//
//	press-loadgen -targets http://127.0.0.1:PORT1,http://127.0.0.1:PORT2 \
//	              [-trace clarknet] [-files 2000] [-requests 20000] [-concurrency 32] \
//	              [-rate R] [-duration D] [-dissemination PB|...|SHARD|GOSSIP]
//
// The -trace/-files flags must match the pressd instance so the
// requested names exist. With -dissemination, the generator asks the
// first target's /_press/stats endpoint which strategy the cluster
// runs and refuses to start on a mismatch — catching the classic
// benchmarking error of loading a differently-configured cluster.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"press/cliflag"
	"press/loadgen"
	"press/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("press-loadgen: ")
	var (
		targets     = flag.String("targets", "", "comma-separated base URLs of cluster nodes")
		traceName   = flag.String("trace", "clarknet", "trace name (must match pressd)")
		files       = flag.Int("files", 2000, "file population limit (must match pressd)")
		requests    = flag.Int("requests", 20000, "number of requests to issue (open loop: cap, 0 = until -duration)")
		concurrency = flag.Int("concurrency", 32, "closed-loop clients")
		rate        = flag.Float64("rate", 0, "open-loop Poisson arrival rate in req/s (0 = closed loop)")
		duration    = flag.Duration("duration", 10*time.Second, "open-loop run length")
		hotspot     = flag.Float64("hotspot", 0, "Zipf-hotspot preset: draw each request from Zipf(alpha) over popularity ranks instead of the trace order (0 = off; 1.5-2 concentrates the head)")
		seed        = flag.Int64("seed", 1, "random seed")
		dissem      = flag.String("dissemination", "", "verify the cluster runs this strategy before driving it ("+cliflag.DisseminationNames()+"; empty = don't check)")
	)
	flag.Parse()
	if *targets == "" {
		log.Print("missing -targets")
		flag.Usage()
		os.Exit(2)
	}
	targetList := strings.Split(*targets, ",")
	if *dissem != "" {
		if err := verifyStrategy(targetList[0], *dissem); err != nil {
			log.Fatal(err)
		}
	}

	spec, err := trace.SpecByName(*traceName)
	if err != nil {
		log.Fatal(err)
	}
	if *files > 0 && *files < spec.NumFiles {
		spec.NumFiles = *files
	}
	if *requests > 0 && *requests < spec.NumRequests {
		spec.NumRequests = *requests
	}
	tr, err := trace.Synthesize(spec)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := loadgen.Run(ctx, loadgen.Config{
		Targets:     targetList,
		Trace:       tr,
		Concurrency: *concurrency,
		Requests:    *requests,
		Rate:        *rate,
		Duration:    *duration,
		Hotspot:     *hotspot,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("requests:   %d (%d errors)\n", res.Requests, res.Errors)
	if res.Errors > 0 {
		fmt.Printf("errors:     timeout %d  refused %d  shed %d  server %d  other %d\n",
			res.ErrTimeout, res.ErrRefused, res.ErrShed, res.ErrServer, res.ErrOther)
	}
	fmt.Printf("elapsed:    %v\n", res.Elapsed)
	fmt.Printf("goodput:    %.1f req/s (successful)\n", res.Throughput)
	fmt.Printf("bytes:      %d\n", res.Bytes)
	fmt.Printf("latency:    mean %.2fms  std %.2fms  p50 %.2fms  p99 %.2fms  max %.2fms\n",
		res.LatencyMean*1e3, res.LatencyStd*1e3,
		res.LatencyP50*1e3, res.LatencyP99*1e3, res.LatencyMax*1e3)
	if len(res.TargetOK) > 1 {
		shares := make([]string, len(res.TargetOK))
		for i, n := range res.TargetOK {
			shares[i] = fmt.Sprintf("%d", n)
		}
		fmt.Printf("per-node:   ok [%s]  imbalance %.2fx\n", strings.Join(shares, " "), res.Imbalance)
	}
}

// verifyStrategy asks one cluster node's stats endpoint which
// dissemination strategy it runs and errors on a mismatch with want —
// the flag value is validated against the shared strategy surface
// first, so a typo fails before the network round trip.
func verifyStrategy(target, want string) error {
	if _, err := cliflag.DisseminationList(want); err != nil || want == "all" {
		return fmt.Errorf("bad -dissemination %q (choose from %s)", want, cliflag.DisseminationNames())
	}
	url := strings.TrimSuffix(target, "/") + "/_press/stats"
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("strategy check: %w", err)
	}
	defer resp.Body.Close()
	// Read the body up front (capped: an error page can be arbitrarily
	// large) so every failure mode below can quote what the server
	// actually said instead of leaving the operator to re-curl it.
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	if err != nil {
		return fmt.Errorf("strategy check: reading %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("strategy check: %s returned %s: %s", url, resp.Status, excerpt(body))
	}
	var stats struct {
		Strategy string `json:"strategy"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		return fmt.Errorf("strategy check: decoding %s: %w (body: %s)", url, err, excerpt(body))
	}
	if stats.Strategy != want {
		return fmt.Errorf("cluster runs dissemination %s, not %s (%s said: %s); restart pressd or drop -dissemination",
			stats.Strategy, want, url, excerpt(body))
	}
	return nil
}

// excerpt flattens a response body onto one log line.
func excerpt(body []byte) string {
	s := strings.TrimSpace(string(body))
	s = strings.ReplaceAll(s, "\n", " ")
	if s == "" {
		return "(empty body)"
	}
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}
