// Command press-top is a live terminal dashboard for a running PRESS
// cluster: it scrapes /_press/metrics on every target each interval,
// computes windowed rates client-side from successive scrapes, and
// renders per-node sparklines — request and goodput rates, accept-queue
// delay, and intra-cluster (dissemination) traffic.
//
// Usage:
//
//	press-top -targets http://HOST:PORT[,http://HOST:PORT...]
//	          [-interval 1s] [-width 40] [-iterations 0] [-no-clear]
//
// Point -targets at pressd nodes started with -expose (or any endpoint
// serving the press families in Prometheus text format). Because an
// in-process cluster shares one registry, scraping any one node yields
// every node's series; press-top dedupes by the node label, so listing
// every address is still correct and survives individual node deaths.
//
// -iterations N stops after N refreshes and -no-clear appends frames
// instead of redrawing in place; together they make the dashboard
// scriptable (and testable) as a plain text filter.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"press/stats"
	"press/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("press-top: ")
	var (
		targets    = flag.String("targets", "", "comma-separated node base URLs (e.g. http://127.0.0.1:8080,http://127.0.0.1:8081)")
		interval   = flag.Duration("interval", time.Second, "scrape and refresh interval")
		width      = flag.Int("width", 40, "sparkline width in cells")
		iterations = flag.Int("iterations", 0, "stop after N refreshes (0 = run until interrupted)")
		noClear    = flag.Bool("no-clear", false, "append frames instead of redrawing in place")
		timeout    = flag.Duration("timeout", 2*time.Second, "per-scrape HTTP timeout")
	)
	flag.Parse()
	if *targets == "" {
		log.Fatal("no targets: pass -targets with at least one node URL (pressd -expose prints them)")
	}
	urls := strings.Split(*targets, ",")
	for i, u := range urls {
		urls[i] = strings.TrimSuffix(strings.TrimSpace(u), "/") + "/_press/metrics"
	}

	top := newTop(*width)
	client := &http.Client{Timeout: *timeout}
	for n := 0; *iterations <= 0 || n < *iterations; n++ {
		if n > 0 {
			//presslint:ignore naked-sleep the dashboard refresh cadence IS the -interval flag; nothing to model
			time.Sleep(*interval)
		}
		var samples []telemetry.PromSample
		var up, down int
		for _, u := range urls {
			s, err := scrape(client, u)
			if err != nil {
				down++
				continue
			}
			up++
			samples = append(samples, s...)
		}
		top.observe(time.Now(), samples)
		if !*noClear {
			fmt.Print("\x1b[2J\x1b[H")
		}
		fmt.Printf("press-top  %s  targets %d up / %d down  interval %v\n\n",
			time.Now().Format("15:04:05"), up, down, *interval)
		if err := top.render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// scrape fetches one exposition endpoint and parses its samples.
func scrape(client *http.Client, url string) ([]telemetry.PromSample, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return telemetry.ParseProm(resp.Body)
}

// nodePanels is one node's dashboard block: four sparklines fed by
// client-side rate computation.
type nodePanels struct {
	rps     *stats.Sparkline // press_requests_total rate
	goodput *stats.Sparkline // press_goodput_requests_total rate
	delay   *stats.Sparkline // windowed mean accept-queue delay
	net     *stats.Sparkline // press_msg_bytes rate, all types summed
}

// nodeCounters are the per-node cumulative values one scrape yields;
// successive scrapes difference them into rates.
type nodeCounters struct {
	requests   float64
	goodput    float64
	delaySum   float64 // press_queue_delay_ns_sum
	delayCount float64 // press_queue_delay_ns_count
	msgBytes   float64 // all message types summed
}

type top struct {
	width  int
	panels map[string]*nodePanels
	prev   map[string]nodeCounters
	prevT  time.Time
	primed bool
}

func newTop(width int) *top {
	return &top{
		width:  width,
		panels: make(map[string]*nodePanels),
		prev:   make(map[string]nodeCounters),
	}
}

// collect folds one scrape's samples into per-node cumulative counters.
// Counters are monotonic and an in-process cluster serves the identical
// registry from every node, so duplicate series across targets dedupe
// by keeping the maximum value seen for a node.
func collect(samples []telemetry.PromSample) map[string]nodeCounters {
	perNode := make(map[string]map[string]float64) // node -> family-ish key -> max
	add := func(node, key string, v float64) {
		m, ok := perNode[node]
		if !ok {
			m = make(map[string]float64)
			perNode[node] = m
		}
		if v > m[key] {
			m[key] = v
		}
	}
	bytesByType := make(map[string]map[string]float64) // node -> type -> max
	for _, s := range samples {
		node := s.Label("node")
		if node == "" {
			continue
		}
		switch s.Name {
		case "press_requests_total":
			add(node, "requests", s.Value)
		case "press_goodput_requests_total":
			add(node, "goodput", s.Value)
		case "press_queue_delay_ns_sum":
			add(node, "delaySum", s.Value)
		case "press_queue_delay_ns_count":
			add(node, "delayCount", s.Value)
		case "press_msg_bytes":
			m, ok := bytesByType[node]
			if !ok {
				m = make(map[string]float64)
				bytesByType[node] = m
			}
			if t := s.Label("type"); s.Value > m[t] {
				m[t] = s.Value
			}
		}
	}
	out := make(map[string]nodeCounters, len(perNode))
	for node, m := range perNode {
		c := nodeCounters{
			requests:   m["requests"],
			goodput:    m["goodput"],
			delaySum:   m["delaySum"],
			delayCount: m["delayCount"],
		}
		for _, v := range bytesByType[node] {
			c.msgBytes += v
		}
		out[node] = c
	}
	for node, m := range bytesByType {
		if _, ok := out[node]; !ok {
			var c nodeCounters
			for _, v := range m {
				c.msgBytes += v
			}
			out[node] = c
		}
	}
	return out
}

// observe differences this scrape against the previous one and pushes
// one point per panel. The first scrape only primes the baseline.
func (t *top) observe(now time.Time, samples []telemetry.PromSample) {
	cur := collect(samples)
	defer func() { t.prev, t.prevT, t.primed = cur, now, true }()
	if !t.primed {
		return
	}
	dt := now.Sub(t.prevT).Seconds()
	if dt <= 0 {
		return
	}
	for node, c := range cur {
		p, ok := t.panels[node]
		if !ok {
			p = &nodePanels{
				rps:     stats.NewSparkline("  req/s  ", t.width, "req/s"),
				goodput: stats.NewSparkline("  good/s ", t.width, "req/s"),
				delay:   stats.NewSparkline("  delay  ", t.width, "ms"),
				net:     stats.NewSparkline("  net    ", t.width, "KB/s"),
			}
			t.panels[node] = p
		}
		base := t.prev[node] // zero value for a freshly appeared node
		p.rps.Add(rate(c.requests, base.requests, dt))
		p.goodput.Add(rate(c.goodput, base.goodput, dt))
		if dc := c.delayCount - base.delayCount; dc > 0 {
			p.delay.Add((c.delaySum - base.delaySum) / dc / 1e6) // ns -> ms
		} else {
			p.delay.Add(0) // idle window: no accepts queued
		}
		p.net.Add(rate(c.msgBytes, base.msgBytes, dt) / 1024)
	}
}

// rate differences a monotonic counter over dt seconds, treating a
// negative delta (node restarted, counter wiped) as a restart from
// zero, mirroring the telemetry sampler's reset rule.
func rate(cur, prev, dt float64) float64 {
	delta := cur - prev
	if delta < 0 {
		delta = cur
	}
	return delta / dt
}

func (t *top) render(w io.Writer) error {
	if len(t.panels) == 0 {
		_, err := fmt.Fprintln(w, "waiting for samples (need two scrapes for rates; are targets up and started with -expose?)")
		return err
	}
	nodes := make([]string, 0, len(t.panels))
	for n := range t.panels {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		a, errA := strconv.Atoi(nodes[i])
		b, errB := strconv.Atoi(nodes[j])
		if errA != nil || errB != nil {
			return nodes[i] < nodes[j]
		}
		return a < b
	})
	blocks := make([]stats.Renderer, 0, len(nodes))
	for _, n := range nodes {
		p := t.panels[n]
		blocks = append(blocks, stats.Titled("node "+n,
			multi{p.rps, p.goodput, p.delay, p.net}))
	}
	return stats.RenderAll(w, blocks...)
}

// multi stacks several renderers into one block, one per line.
type multi []stats.Renderer

func (m multi) Render() string {
	var b strings.Builder
	for _, r := range m {
		b.WriteString(r.Render())
		b.WriteString("\n")
	}
	return b.String()
}
