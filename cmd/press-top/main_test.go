package main

import (
	"strings"
	"testing"
	"time"

	"press/telemetry"
)

func sample(name string, v float64, labels ...string) telemetry.PromSample {
	s := telemetry.PromSample{Name: name, Value: v, Labels: map[string]string{}}
	for i := 0; i+1 < len(labels); i += 2 {
		s.Labels[labels[i]] = labels[i+1]
	}
	return s
}

// Scraping every node of an in-process cluster returns the same shared
// registry N times; collect must dedupe, not sum.
func TestCollectDedupesSharedRegistry(t *testing.T) {
	one := []telemetry.PromSample{
		sample("press_requests_total", 100, "node", "0"),
		sample("press_requests_total", 50, "node", "1"),
		sample("press_msg_bytes", 4096, "node", "0", "type", "load"),
		sample("press_msg_bytes", 1024, "node", "0", "type", "file"),
	}
	got := collect(append(append([]telemetry.PromSample{}, one...), one...))
	if got["0"].requests != 100 || got["1"].requests != 50 {
		t.Errorf("requests = %+v", got)
	}
	if got["0"].msgBytes != 5120 {
		t.Errorf("msgBytes sums types but dedupes targets: %v", got["0"].msgBytes)
	}
}

func TestObserveRates(t *testing.T) {
	top := newTop(10)
	t0 := time.Unix(1000, 0)
	top.observe(t0, []telemetry.PromSample{
		sample("press_requests_total", 100, "node", "0"),
		sample("press_queue_delay_ns_sum", 1e6, "node", "0"),
		sample("press_queue_delay_ns_count", 1, "node", "0"),
	})
	if len(top.panels) != 0 {
		t.Fatal("first scrape must only prime")
	}
	top.observe(t0.Add(2*time.Second), []telemetry.PromSample{
		sample("press_requests_total", 300, "node", "0"),
		sample("press_queue_delay_ns_sum", 5e6, "node", "0"),
		sample("press_queue_delay_ns_count", 3, "node", "0"),
	})
	p := top.panels["0"]
	if p == nil {
		t.Fatal("no panel for node 0")
	}
	if got := p.rps.Last(); got != 100 {
		t.Errorf("req/s = %v, want 100", got)
	}
	// (5e6-1e6) ns over 2 new observations = 2ms mean delay.
	if got := p.delay.Last(); got != 2 {
		t.Errorf("delay = %v ms, want 2", got)
	}
}

func TestRateCounterRestart(t *testing.T) {
	if got := rate(30, 100, 2); got != 15 {
		t.Errorf("restart rate = %v, want 15 (counter wiped, new value is the delta)", got)
	}
	if got := rate(100, 40, 2); got != 30 {
		t.Errorf("rate = %v, want 30", got)
	}
}

func TestRenderShowsNodesInOrder(t *testing.T) {
	top := newTop(10)
	t0 := time.Unix(1000, 0)
	mk := func(v float64) []telemetry.PromSample {
		return []telemetry.PromSample{
			sample("press_requests_total", v, "node", "2"),
			sample("press_requests_total", v, "node", "10"),
			sample("press_requests_total", v, "node", "0"),
		}
	}
	top.observe(t0, mk(10))
	top.observe(t0.Add(time.Second), mk(20))
	var b strings.Builder
	if err := top.render(&b); err != nil {
		t.Fatal(err)
	}
	f := b.String()
	i0 := strings.Index(f, "node 0")
	i2 := strings.Index(f, "node 2")
	i10 := strings.Index(f, "node 10")
	if i0 < 0 || i2 < 0 || i10 < 0 {
		t.Fatalf("missing node blocks:\n%s", f)
	}
	if !(i0 < i2 && i2 < i10) {
		t.Errorf("nodes out of numeric order (0 at %d, 2 at %d, 10 at %d)", i0, i2, i10)
	}
}
