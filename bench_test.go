// Package press benchmarks regenerate every table and figure of the
// paper's evaluation: run `go test -bench=. -benchmem` and compare the
// reported metrics against EXPERIMENTS.md. Simulation benches report
// simulated request throughput; real-stack benches report wall-clock
// throughput of the runnable PRESS cluster.
package press

import (
	"context"
	"fmt"
	"testing"
	"time"

	"press/core"
	"press/experiments"
	"press/loadgen"
	"press/metrics"
	"press/model"
	"press/netmodel"
	"press/server"
	"press/trace"
	"press/tracing"
	"press/via"
)

// benchOptions keeps the per-iteration simulation cost modest; raise
// Requests (e.g. -benchtime with a custom main) for paper-scale runs.
func benchOptions() experiments.Options {
	return experiments.Options{Requests: 60000, Seed: 1}
}

// BenchmarkFigure1 regenerates Figure 1: share of time on intra-cluster
// communication under TCP/FE, per trace.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.CommFraction*100, r.Trace+"_comm_%")
			}
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3: throughput per combination.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var bw, ov float64
			for _, r := range rows {
				bw += r.BandwidthEffect()
				ov += r.OverheadEffect()
			}
			b.ReportMetric(bw/4*100, "avg_bandwidth_gain_%")
			b.ReportMetric(ov/4*100, "avg_overhead_gain_%")
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: dissemination strategies.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			r := rows[0]
			b.ReportMetric(r.Throughput["PB"], "clarknet_PB_req/s")
			b.ReportMetric(r.Throughput["L1"], "clarknet_L1_req/s")
			b.ReportMetric(r.Throughput["NLB"], "clarknet_NLB_req/s")
		}
	}
}

// BenchmarkTable2 regenerates Table 2: message accounting per strategy.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, err := experiments.Table2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, e := range entries {
				b.ReportMetric(float64(e.Msgs.Count[core.MsgLoad])/1e3, e.Strategy+"_load_Kmsgs")
			}
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5: V1..V5 gains over V0.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var v4, v5 float64
			for _, r := range rows {
				v4 += r.Gain[3]
				v5 += r.Gain[4]
			}
			b.ReportMetric(v4/4*100, "avg_V4_gain_%")
			b.ReportMetric(v5/4*100, "avg_V5_gain_%")
		}
	}
}

// BenchmarkTable4 regenerates Table 4: message accounting per version.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, err := experiments.Table4(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			byName := map[string]int64{}
			for _, e := range entries {
				byName[e.Version] = e.Msgs.Count[core.MsgFile]
			}
			b.ReportMetric(float64(byName["V3"])/float64(byName["V2"]), "V3/V2_file_msg_ratio")
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6: summary of contributions.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var total float64
			for _, r := range rows {
				total += r.TotalGain()
			}
			b.ReportMetric(total/4*100, "avg_userlevel_gain_%")
		}
	}
}

// BenchmarkValidation regenerates the Section 4.2 model validation.
func BenchmarkValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Validation(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sum float64
			for _, r := range rows {
				sum += r.Ratio
			}
			b.ReportMetric(sum/float64(len(rows)), "avg_model/sim_ratio")
		}
	}
}

// Model figures 8-13: pure analytical solves.
func benchmarkSurface(b *testing.B, fn func() (model.Surface, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			gain, _, _ := s.Max()
			b.ReportMetric((gain-1)*100, "max_gain_%")
		}
	}
}

func BenchmarkFigure8(b *testing.B)  { benchmarkSurface(b, model.Figure8) }
func BenchmarkFigure9(b *testing.B)  { benchmarkSurface(b, model.Figure9) }
func BenchmarkFigure10(b *testing.B) { benchmarkSurface(b, model.Figure10) }
func BenchmarkFigure11(b *testing.B) { benchmarkSurface(b, model.Figure11) }
func BenchmarkFigure12(b *testing.B) { benchmarkSurface(b, model.Figure12) }
func BenchmarkFigure13(b *testing.B) { benchmarkSurface(b, model.Figure13) }

// Ablation benches for the design choices called out in DESIGN.md.

func BenchmarkAblationRMWSingleMessage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v2, v3, v3s, err := experiments.AblationRMWSingleMessage(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(v2, "V2_req/s")
			b.ReportMetric(v3, "V3_req/s")
			b.ReportMetric(v3s, "V3_single_msg_req/s")
		}
	}
}

func BenchmarkAblationLoadRMW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reg, rmw, err := experiments.AblationLoadRMW(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric((rmw/reg-1)*100, "L1_rmw_gain_%")
		}
	}
}

func BenchmarkAblationFlowBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFlowBatch(benchOptions(), []int{1, 4, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOverloadThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationOverloadThreshold(benchOptions(), []int{40, 80, 160}); err != nil {
			b.Fatal(err)
		}
	}
}

// Real-stack benches: the runnable PRESS server driven end to end.

func benchRealCluster(b *testing.B, kind server.TransportKind, version string) {
	b.Helper()
	tr, err := trace.Synthesize(trace.Spec{
		Name: "bench", NumFiles: 300, AvgFileKB: 8,
		NumRequests: 20000, AvgReqKB: 6, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	ver, err := netmodel.VersionByName(version)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := server.Start(server.Config{
		Nodes: 4, Trace: tr, Transport: kind, Version: ver,
		CacheBytes: 4 << 20, DiskDelay: 200 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	targets := make([]string, 0, 4)
	for _, a := range cl.Addrs() {
		targets = append(targets, "http://"+a)
	}
	b.ResetTimer()
	var throughput float64
	for i := 0; i < b.N; i++ {
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			Targets: targets, Trace: tr, Concurrency: 16,
			Requests: 3000, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Errors > 0 {
			b.Fatalf("%d errors", res.Errors)
		}
		throughput = res.Throughput
	}
	b.ReportMetric(throughput, "req/s")
}

func BenchmarkRealClusterTCP(b *testing.B)   { benchRealCluster(b, server.TransportTCP, "V0") }
func BenchmarkRealClusterVIAV0(b *testing.B) { benchRealCluster(b, server.TransportVIA, "V0") }
func BenchmarkRealClusterVIAV3(b *testing.B) { benchRealCluster(b, server.TransportVIA, "V3") }
func BenchmarkRealClusterVIAV5(b *testing.B) { benchRealCluster(b, server.TransportVIA, "V5") }

// Software VIA microbenchmarks (the Section 3.2 measurements against
// the software implementation).

func viaPair(b *testing.B, opts ...via.FabricOption) (*via.NIC, *via.NIC, *via.VI, *via.VI, func()) {
	b.Helper()
	f := via.NewFabric(opts...)
	na, err := f.CreateNIC("a")
	if err != nil {
		b.Fatal(err)
	}
	nb, err := f.CreateNIC("b")
	if err != nil {
		b.Fatal(err)
	}
	ln, err := nb.Listen("bench")
	if err != nil {
		b.Fatal(err)
	}
	vb, err := nb.CreateVI(via.ReliableDelivery, 256)
	if err != nil {
		b.Fatal(err)
	}
	va, err := na.CreateVI(via.ReliableDelivery, 256)
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept(vb)
		done <- err
	}()
	if err := va.Connect("b", "bench"); err != nil {
		b.Fatal(err)
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	return na, nb, va, vb, f.Close
}

func BenchmarkViaSendRecv4B(b *testing.B) {
	benchViaSend(b, 4)
}

func BenchmarkViaSendRecv32K(b *testing.B) {
	benchViaSend(b, 32*1024)
}

// BenchmarkViaSendMetricsOff and ...On bracket the cost of the
// observability layer on the VIA send path. Off (no registry) is the
// default everywhere; the nil-instrument no-ops must stay within noise
// of the pre-metrics send path, and On shows the price of enabling it.
func BenchmarkViaSendMetricsOff(b *testing.B) {
	benchViaSend(b, 4)
}

func BenchmarkViaSendMetricsOn(b *testing.B) {
	benchViaSend(b, 4, via.WithMetrics(metrics.NewRegistry()))
}

// BenchmarkServeTracingOff and ...On bracket the cost of the tracing
// layer on the request serve path. Off drives the exact span
// choreography of one served request — root, accept-queue, dispatch,
// net-send, reply — against a nil collector, the default, and must do
// zero allocations; On records the same spans into a live collector and
// shows the price of enabling tracing.
func BenchmarkServeTracingOff(b *testing.B) {
	benchServeTracing(b, nil)
}

func BenchmarkServeTracingOn(b *testing.B) {
	tr := tracing.New(tracing.WithSampleRate(1))
	benchServeTracing(b, tr.Collector(0))
}

func benchServeTracing(b *testing.B, c *tracing.Collector) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := c.StartTrace("request")
		root.AnnotateStr("file", "/bench.html")
		acc := root.StartChild("accept-queue")
		acc.End()
		dsp := root.StartChild("dispatch")
		dsp.Annotate("service", 1)
		dsp.End()
		ns := c.StartSpan("net-send", root.Trace(), root.ID())
		ns.End()
		rep := root.StartChild("reply")
		rep.Annotate("bytes", 4096)
		rep.End()
		root.End()
	}
}

func benchViaSend(b *testing.B, size int, opts ...via.FabricOption) {
	na, nb, va, vb, closeF := viaPair(b, opts...)
	defer closeF()
	sreg, err := na.RegisterMemory(make([]byte, size))
	if err != nil {
		b.Fatal(err)
	}
	rreg, err := nb.RegisterMemory(make([]byte, size))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := via.MustDescriptor(via.Segment{Region: rreg, Offset: 0, Len: size})
		if err := vb.PostRecv(rd); err != nil {
			b.Fatal(err)
		}
		sd := via.MustDescriptor(via.Segment{Region: sreg, Offset: 0, Len: size})
		if err := va.PostSend(sd); err != nil {
			b.Fatal(err)
		}
		if err := sd.Wait(time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViaRDMAWrite(b *testing.B) {
	na, nb, va, _, closeF := viaPair(b)
	defer closeF()
	const size = 4096
	sreg, err := na.RegisterMemory(make([]byte, size))
	if err != nil {
		b.Fatal(err)
	}
	rreg, err := nb.RegisterMemory(make([]byte, size))
	if err != nil {
		b.Fatal(err)
	}
	rreg.EnableRemoteWrite()
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := via.MustDescriptor(via.Segment{Region: sreg, Offset: 0, Len: size})
		if err := va.PostRDMAWrite(d, rreg.Handle(), 0); err != nil {
			b.Fatal(err)
		}
		if err := d.Wait(time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the four synthetic traces and checks the
// calibration cost.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range trace.Table1Specs() {
			spec.NumRequests = 50000
			tr, err := trace.Synthesize(spec)
			if err != nil {
				b.Fatal(err)
			}
			st := tr.Stats()
			if i == 0 {
				b.ReportMetric(st.AvgFileKB, fmt.Sprintf("%s_avg_file_KB", spec.Name))
			}
		}
	}
}

// BenchmarkLocalityBenefit quantifies the motivation for
// locality-conscious servers: PRESS vs a content-oblivious baseline at
// a cache size well below the working set.
func BenchmarkLocalityBenefit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.LocalityBenefit(benchOptions(), []int64{32 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p := pts[0]
			b.ReportMetric(p.Oblivious, "oblivious_req/s")
			b.ReportMetric(p.PRESS, "press_req/s")
		}
	}
}

// BenchmarkNodeSweep cross-checks the simulator against the model's
// Figure 8 trend.
func BenchmarkNodeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.NodeSweep(benchOptions(), []int{2, 8, 32})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pts[len(pts)-1].Gain*100, "gain_at_32_nodes_%")
		}
	}
}

// BenchmarkRealClusterZeroCopyBytes measures the staging/receive copy
// volume of the real server per version — V5 must report zero.
func BenchmarkRealClusterZeroCopyBytes(b *testing.B) {
	tr, err := trace.Synthesize(trace.Spec{
		Name: "zc", NumFiles: 100, AvgFileKB: 8,
		NumRequests: 1000, AvgReqKB: 6, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"V3", "V5"} {
			ver, _ := netmodel.VersionByName(name)
			cl, err := server.Start(server.Config{
				Nodes: 3, Trace: tr, Transport: server.TransportVIA, Version: ver,
				CacheBytes: 2 << 20, DiskDelay: 100 * time.Microsecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			targets := make([]string, 0, 3)
			for _, a := range cl.Addrs() {
				targets = append(targets, "http://"+a)
			}
			res, err := loadgen.Run(context.Background(), loadgen.Config{
				Targets: targets, Trace: tr, Concurrency: 8, Requests: 600, Seed: 1,
			})
			if err != nil || res.Errors > 0 {
				b.Fatalf("loadgen: %v (%d errors)", err, res.Errors)
			}
			if i == 0 {
				b.ReportMetric(float64(cl.Stats().CopiedBytes)/1e6, name+"_copied_MB")
			}
			cl.Close()
		}
	}
}
