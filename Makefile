# press — build and verification entry points.

GO ?= go

.PHONY: build test race lint check benchsmoke bench procsmoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/presslint ./...

# procsmoke is the multi-process crash-restart gate: three real node
# processes, one killed -9 mid-run and restarted, availability and
# rejoin convergence asserted under the race detector.
procsmoke:
	$(GO) test -race -count=1 -timeout 240s -run 'TestProcSmoke' ./server/procharness

# benchsmoke builds every benchmark (failing on compile errors) and
# runs the cheap via-layer send pair once.
benchsmoke:
	$(GO) test -run '^$$' -bench '^$$' ./...
	$(GO) test -run '^$$' -bench BenchmarkViaSendMetrics -benchtime 1x .

# bench records the observability-overhead baseline (tracing and
# metrics on/off) into BENCH_trace.json, the directory-scaling
# baseline (directory messages per request vs cluster size, broadcast
# vs sharded vs gossip) into BENCH_directory.json, the telemetry-plane
# overhead baseline (sampler off/on, event hot path, exposition render)
# into BENCH_telemetry.json, and the hot-object replication baseline
# (goodput/p99 across Zipf exponents, replication off vs on) into
# BENCH_replication.json.
bench:
	sh scripts/bench.sh BENCH_trace.json
	sh scripts/bench_directory.sh BENCH_directory.json
	sh scripts/bench_telemetry.sh BENCH_telemetry.json
	sh scripts/bench_replication.sh BENCH_replication.json

# check is the full gate: vet, build, race-enabled tests, presslint,
# benchmark smoke.
check:
	sh scripts/check.sh
