# press — build and verification entry points.

GO ?= go

.PHONY: build test race lint check benchsmoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/presslint ./...

# benchsmoke builds every benchmark (failing on compile errors) and
# runs the cheap via-layer send pair once.
benchsmoke:
	$(GO) test -run '^$$' -bench '^$$' ./...
	$(GO) test -run '^$$' -bench BenchmarkViaSendMetrics -benchtime 1x .

# check is the full gate: vet, build, race-enabled tests, presslint,
# benchmark smoke.
check:
	sh scripts/check.sh
