# press — build and verification entry points.

GO ?= go

.PHONY: build test race lint check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/presslint ./...

# check is the full gate: vet, build, race-enabled tests, presslint.
check:
	sh scripts/check.sh
